"""Fixed-heartbeat baseline (§2.1.2).

The basic receiver-reliable protocol sends a heartbeat every MaxIT
whenever the application is idle.  In this codebase that is simply an
LBRM sender whose heartbeat config has ``backoff = 1`` — the variable
schedule degenerates to a constant period — so the baseline shares every
other code path with the real protocol and comparisons isolate exactly
the scheduling difference.
"""

from __future__ import annotations

from repro.core.config import HeartbeatConfig, LbrmConfig

__all__ = ["fixed_heartbeat_config", "FIXED_DEFAULT"]

FIXED_DEFAULT = HeartbeatConfig(h_min=0.25, h_max=0.25, backoff=1.0)


def fixed_heartbeat_config(interval: float = 0.25, base: LbrmConfig | None = None) -> LbrmConfig:
    """An :class:`LbrmConfig` whose sender heartbeats at a fixed rate.

    ``interval`` should equal the variable scheme's ``h_min`` for an
    apples-to-apples comparison (both then give the same detection delay
    for isolated losses).
    """
    base = base or LbrmConfig()
    fixed = HeartbeatConfig(h_min=interval, h_max=interval, backoff=1.0)
    return LbrmConfig(
        heartbeat=fixed,
        receiver=base.receiver,
        logger=base.logger,
        statack=base.statack,
        replication=base.replication,
        discovery=base.discovery,
    )
