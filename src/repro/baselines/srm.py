"""wb/SRM-style unorganized recovery — the paper's main comparator (§6).

"LBRM takes an organized approach to recovery, while wb is fundamentally
unorganized. ... a receiver requests lost packets from everyone in the
group, and anyone with the packet may respond."

This module implements the published wb/SRM recovery mechanism (Floyd,
Jacobson, Liu, McCanne & Zhang, SIGCOMM '95) to the level of detail the
LBRM paper's comparison relies on:

* every data packet is cached by every member (any member can repair);
* loss is detected from data gaps or from periodic, fixed-interval
  *session messages* announcing the source's highest sequence number —
  wb's equivalent of the fixed heartbeat (§6: "wb does not provide fast
  loss detection, but rather, it relies on periodic multicast session
  messages");
* a member wanting ``seq`` multicasts a REPAIR REQUEST to the whole
  group after a random delay drawn from ``[C1·d_S, (C1+C2)·d_S]``, where
  ``d_S`` is its estimated one-way delay to the source; seeing someone
  else's request for the same sequence suppresses its own (with
  exponential back-off of the re-request timer);
* a member holding ``seq`` answers with a multicast REPAIR after a
  random delay from ``[D1·d_R, (D1+D2)·d_R]`` (``d_R`` = delay to the
  requester); seeing another member's repair cancels its own.

With the paper's constants (C1 = C2 = D1 = D2 = 1) the last receiver to
recover does so in about 3×RTT to the source — the figure §6 quotes.

Simplification: SRM learns pairwise distances from timestamps in session
messages; here each member is constructed with its one-way source delay
and an optional per-peer delay function (the simulation knows the
topology).  This replaces the estimation machinery, not the recovery
algorithm, and is documented in DESIGN.md.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Callable, ClassVar

from repro.core.actions import Action, Address, Deliver, JoinGroup, Notify, SendMulticast
from repro.core.errors import DecodeError
from repro.core.events import LossDetected, RecoveryComplete
from repro.core.machine import ProtocolMachine
from repro.core.packets import (
    DataPacket,
    Packet,
    PacketType,
    _pack_bytes,
    _unpack_bytes,
    register_packet,
)
from repro.core.sequence import SequenceTracker

__all__ = [
    "SrmSessionPacket",
    "SrmRequestPacket",
    "SrmRepairPacket",
    "SrmSender",
    "SrmMember",
]


@register_packet
@dataclass(frozen=True, slots=True)
class SrmSessionPacket(Packet):
    """Periodic session message announcing the source's highest seq."""

    seq: int

    TYPE: ClassVar[PacketType] = PacketType.SRM_SESSION
    WIRE: ClassVar[tuple] = (("seq", "u64"),)

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "SrmSessionPacket":
        if len(buf) != 8:
            raise DecodeError("bad SRM_SESSION body length")
        (seq,) = struct.unpack_from("!Q", buf, 0)
        return cls(group=group, seq=seq)


@register_packet
@dataclass(frozen=True, slots=True)
class SrmRequestPacket(Packet):
    """Group-wide multicast repair request for one sequence number."""

    seq: int

    TYPE: ClassVar[PacketType] = PacketType.SRM_REQUEST
    WIRE: ClassVar[tuple] = (("seq", "u64"),)

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "SrmRequestPacket":
        if len(buf) != 8:
            raise DecodeError("bad SRM_REQUEST body length")
        (seq,) = struct.unpack_from("!Q", buf, 0)
        return cls(group=group, seq=seq)


@register_packet
@dataclass(frozen=True, slots=True)
class SrmRepairPacket(Packet):
    """Group-wide multicast repair carrying the requested data."""

    seq: int
    payload: bytes

    TYPE: ClassVar[PacketType] = PacketType.SRM_REPAIR
    WIRE: ClassVar[tuple] = (("seq", "u64"), ("payload", "bytes"))

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.seq) + _pack_bytes(self.payload)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "SrmRepairPacket":
        if len(buf) < 8:
            raise DecodeError("truncated SRM_REPAIR body")
        (seq,) = struct.unpack_from("!Q", buf, 0)
        payload, end = _unpack_bytes(buf, 8)
        if end != len(buf):
            raise DecodeError("trailing garbage after SRM_REPAIR body")
        return cls(group=group, seq=seq, payload=payload)


class SrmSender(ProtocolMachine):
    """The wb source: data plus fixed-interval session messages."""

    def __init__(self, group: str, session_interval: float = 0.25) -> None:
        super().__init__()
        if session_interval <= 0:
            raise ValueError(f"session_interval must be positive, got {session_interval}")
        self._group = group
        self._interval = session_interval
        self._seq = 0
        self.stats = {"data_sent": 0, "sessions_sent": 0}

    @property
    def seq(self) -> int:
        return self._seq

    def start(self, now: float) -> list[Action]:
        self.timers.set(("session",), now + self._interval)
        return [JoinGroup(group=self._group)]

    def send(self, payload: bytes, now: float) -> list[Action]:
        self._seq += 1
        self.stats["data_sent"] += 1
        return [SendMulticast(group=self._group, packet=DataPacket(group=self._group, seq=self._seq, payload=payload))]

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        return []

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            if key[0] == "session":
                self.timers.set(("session",), now + self._interval)
                self.stats["sessions_sent"] += 1
                actions.append(
                    SendMulticast(group=self._group, packet=SrmSessionPacket(group=self._group, seq=self._seq))
                )
        return actions


@dataclass
class _SrmRecovery:
    seq: int
    detected_at: float
    backoff: int = 0  # exponential back-off exponent after suppression


class SrmMember(ProtocolMachine):
    """A wb group member: receiver, cache, and potential repairer."""

    def __init__(
        self,
        group: str,
        *,
        d_source: float,
        d_peer: Callable[[Address], float] | None = None,
        c1: float = 1.0,
        c2: float = 1.0,
        d1: float = 1.0,
        d2: float = 1.0,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__()
        if d_source <= 0:
            raise ValueError(f"d_source must be positive, got {d_source}")
        self._group = group
        self._d_source = d_source
        self._d_peer = d_peer or (lambda addr: d_source)
        self._c1, self._c2 = c1, c2
        self._d1, self._d2 = d1, d2
        # Deterministic default (str seeds hash stably): suppression
        # timer draws are reproducible without an explicit RNG.
        self._rng = rng or random.Random("repro.baselines.srm")
        self._tracker = SequenceTracker()
        self._cache: dict[int, bytes] = {}
        self._recovering: dict[int, _SrmRecovery] = {}
        # seq -> requester we owe a repair to (pending repair timer).
        self._repairing: dict[int, Address] = {}
        self.stats = {
            "data_received": 0,
            "requests_sent": 0,
            "requests_suppressed": 0,
            "repairs_sent": 0,
            "repairs_cancelled": 0,
            "recoveries": 0,
            "duplicate_repairs_seen": 0,
        }

    # -- introspection ----------------------------------------------------

    @property
    def tracker(self) -> SequenceTracker:
        return self._tracker

    @property
    def missing(self) -> frozenset[int]:
        return self._tracker.missing

    def has(self, seq: int) -> bool:
        return seq in self._cache

    # -- lifecycle ----------------------------------------------------------

    def start(self, now: float) -> list[Action]:
        return [JoinGroup(group=self._group)]

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        if isinstance(packet, DataPacket):
            return self._on_data(packet.seq, packet.payload, now, recovered=False)
        if isinstance(packet, SrmRepairPacket):
            return self._on_repair(packet, now)
        if isinstance(packet, SrmSessionPacket):
            return self._on_session(packet, now)
        if isinstance(packet, SrmRequestPacket):
            return self._on_request(packet, src, now)
        return []

    # -- data & session ----------------------------------------------------

    def _on_data(self, seq: int, payload: bytes, now: float, recovered: bool) -> list[Action]:
        report = self._tracker.observe_data(seq)
        self.stats["data_received"] += 1
        actions: list[Action] = []
        if report.is_new:
            self._cache[seq] = payload
            actions.append(Deliver(seq=seq, payload=payload, recovered=recovered))
            recovery = self._recovering.pop(seq, None)
            self.timers.cancel(("request", seq))
            if recovery is not None:
                self.stats["recoveries"] += 1
                actions.append(Notify(RecoveryComplete(seq=seq, latency=now - recovery.detected_at)))
        actions.extend(self._schedule_requests(report.new_gaps, now))
        return actions

    def _on_session(self, packet: SrmSessionPacket, now: float) -> list[Action]:
        report = self._tracker.observe_heartbeat(packet.seq)
        return self._schedule_requests(report.new_gaps, now)

    # -- request path ----------------------------------------------------

    def _schedule_requests(self, gaps: tuple[int, ...], now: float) -> list[Action]:
        gaps = tuple(s for s in gaps if s not in self._recovering)
        if not gaps:
            return []
        for seq in gaps:
            self._recovering[seq] = _SrmRecovery(seq=seq, detected_at=now)
            self.timers.set(("request", seq), now + self._request_delay(0))
        return [Notify(LossDetected(seqs=gaps))]

    def _request_delay(self, backoff: int) -> float:
        base = self._rng.uniform(self._c1 * self._d_source, (self._c1 + self._c2) * self._d_source)
        return base * (2**backoff)

    def _on_request(self, packet: SrmRequestPacket, src: Address, now: float) -> list[Action]:
        seq = packet.seq
        recovery = self._recovering.get(seq)
        if recovery is not None:
            # Someone else asked first: suppress our own request and
            # back off exponentially in case the repair is also lost.
            self.stats["requests_suppressed"] += 1
            recovery.backoff = min(recovery.backoff + 1, 8)
            self.timers.set(("request", seq), now + self._request_delay(recovery.backoff))
            return []
        if seq in self._cache and seq not in self._repairing:
            self._repairing[seq] = src
            d = self._d_peer(src)
            delay = self._rng.uniform(self._d1 * d, (self._d1 + self._d2) * d)
            self.timers.set(("repair", seq), now + delay)
        return []

    def _on_repair(self, packet: SrmRepairPacket, now: float) -> list[Action]:
        # Seeing a repair cancels our own pending repair for that seq.
        if packet.seq in self._repairing:
            self._repairing.pop(packet.seq, None)
            self.timers.cancel(("repair", packet.seq))
            self.stats["repairs_cancelled"] += 1
        if self._tracker.has(packet.seq):
            self.stats["duplicate_repairs_seen"] += 1
            return []
        return self._on_data(packet.seq, packet.payload, now, recovered=True)

    # -- timers ----------------------------------------------------------

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            kind, seq = key
            if kind == "request":
                recovery = self._recovering.get(seq)
                if recovery is None:
                    continue
                self.stats["requests_sent"] += 1
                # Re-arm with back-off: the request (or its repair) may be lost.
                recovery.backoff = min(recovery.backoff + 1, 8)
                self.timers.set(("request", seq), now + self._request_delay(recovery.backoff))
                actions.append(
                    SendMulticast(group=self._group, packet=SrmRequestPacket(group=self._group, seq=seq))
                )
            elif kind == "repair":
                requester = self._repairing.pop(seq, None)
                payload = self._cache.get(seq)
                if requester is None or payload is None:
                    continue
                self.stats["repairs_sent"] += 1
                actions.append(
                    SendMulticast(
                        group=self._group,
                        packet=SrmRepairPacket(group=self._group, seq=seq, payload=payload),
                    )
                )
        return actions
