"""Centralized-logging baseline (§2.2.2, Figure 7a).

Under centralized recovery every receiver NACKs the primary logging
server directly: 20 receivers at a site losing a packet on their tail
circuit put 20 NACKs on the WAN and 20 retransmissions back across the
congested tail.  The deployment helper here is the same
:class:`~repro.simnet.deploy.LbrmDeployment` with secondary loggers
disabled, so the comparison isolates exactly the distributed-logging
optimization.
"""

from __future__ import annotations

from dataclasses import replace

from repro.simnet.deploy import DeploymentSpec, LbrmDeployment

__all__ = ["centralized_spec", "build_centralized"]


def centralized_spec(spec: DeploymentSpec | None = None) -> DeploymentSpec:
    """A copy of ``spec`` with site-local logging switched off."""
    base = spec or DeploymentSpec()
    return replace(base, secondary_loggers=False)


def build_centralized(spec: DeploymentSpec | None = None) -> LbrmDeployment:
    """Build a deployment where all recovery hits the primary logger."""
    return LbrmDeployment(centralized_spec(spec))
