"""Declarative fault schedules.

A :class:`FaultSchedule` is a value: a seeded, serializable list of
:class:`Fault` records saying *what goes wrong when*.  Nothing here
touches a simulator — :class:`~repro.chaos.controller.ChaosController`
compiles a schedule onto a deployment.  Keeping the description inert
makes schedules printable in campaign reports, minimizable on failure,
and replayable from a reproducer seed.

Fault vocabulary
----------------

Node faults (``target`` = host name):

* ``crash`` / ``restart`` — detach the node's machines / re-attach them
  state-intact (the paper's loggers spool to disk, §2.2, so a process
  restart resumes from its log).
* ``pause`` / ``resume`` — alive but unresponsive; inbound traffic is
  lost and timers do not fire (a stop-the-world pause).
* ``skew`` — add a constant offset of ``amount`` seconds to the clock
  the node's machines observe, from ``at`` onward.

Site faults (``target`` = site name):

* ``partition`` — drop everything crossing the site's tail circuit, in
  both directions, for ``duration`` seconds (0 = until a later ``heal``).
* ``heal`` — end an open-ended partition of the site.

Partitions compile to :class:`~repro.simnet.loss.BurstLoss` windows
layered over whatever loss model the tail links already carry — the
composition with existing ``LossModel``s the schedule promises.

Packet faults (windowed, ``target`` = destination host, or ``""`` for
every destination; active for ``duration`` seconds from ``at``):

* ``corrupt`` — each matching delivery is dropped with probability
  ``amount`` (the checksum-discard model: a corrupted packet and a lost
  packet are indistinguishable to the receiver).
* ``duplicate`` — each matching delivery is delivered twice with
  probability ``amount``, the copy 1 ms late.
* ``reorder`` — each matching delivery is delayed by ``amount`` seconds,
  so it lands behind packets sent after it.

Tree faults (``target`` = a logger in a k-level deployment, DESIGN §11):

* ``reparent`` — a mid-epoch tree mutation: move the target logger to
  its best live alternative parent via
  :meth:`~repro.simnet.hierarchy.HierarchyRuntime.force_reparent`.
  On a flat (depth=2) deployment, or when no live alternative parent
  exists, the fault is a no-op and does not count as injected.

Packet faults draw from a :class:`random.Random` derived from the
schedule's ``seed``, so a schedule is one value: same schedule, same
deployment seed, same run — bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packets import Packet

__all__ = ["Fault", "FaultSchedule", "PacketChaos", "DUPLICATE_GAP"]

NODE_KINDS = frozenset({"crash", "restart", "pause", "resume", "skew"})
SITE_KINDS = frozenset({"partition", "heal"})
PACKET_KINDS = frozenset({"corrupt", "duplicate", "reorder"})
TREE_KINDS = frozenset({"reparent"})
ALL_KINDS = NODE_KINDS | SITE_KINDS | PACKET_KINDS | TREE_KINDS

# A duplicate's second copy arrives this long after the original: late
# enough to be a distinct delivery event, early enough to stay inside
# any NACK-suppression window.
DUPLICATE_GAP = 0.001


@dataclass(frozen=True, slots=True)
class Fault:
    """One scheduled fault (see the module docstring for the vocabulary)."""

    kind: str
    at: float
    target: str = ""
    duration: float = 0.0
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {sorted(ALL_KINDS)})")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")
        if self.kind in NODE_KINDS | SITE_KINDS | TREE_KINDS and not self.target:
            raise ValueError(f"{self.kind!r} fault needs a target")
        if self.kind in {"corrupt", "duplicate"} and not 0.0 <= self.amount <= 1.0:
            raise ValueError(f"{self.kind!r} amount is a probability, got {self.amount}")
        if self.kind == "reorder" and self.amount <= 0.0:
            raise ValueError(f"reorder amount is a delay in seconds, got {self.amount}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "target": self.target,
            "duration": self.duration,
            "amount": self.amount,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        return cls(
            kind=data["kind"],
            at=data["at"],
            target=data.get("target", ""),
            duration=data.get("duration", 0.0),
            amount=data.get("amount", 0.0),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, seeded set of faults — the unit the campaign samples,
    minimizes, and prints as a reproducer."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.faults, key=lambda f: f.at))
        object.__setattr__(self, "faults", ordered)

    def __len__(self) -> int:
        return len(self.faults)

    def of_kinds(self, kinds: frozenset[str] | set[str]) -> tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind in kinds)

    @property
    def node_faults(self) -> tuple[Fault, ...]:
        return self.of_kinds(NODE_KINDS)

    @property
    def packet_faults(self) -> tuple[Fault, ...]:
        return self.of_kinds(PACKET_KINDS)

    @property
    def tree_faults(self) -> tuple[Fault, ...]:
        return self.of_kinds(TREE_KINDS)

    def partition_windows(self) -> dict[str, list[tuple[float, float]]]:
        """Per-site ``(start, end)`` outage windows.

        A ``partition`` with ``duration > 0`` closes itself; with
        ``duration == 0`` it stays open until the site's next ``heal``
        (or forever).
        """
        windows: dict[str, list[tuple[float, float]]] = {}
        heals: dict[str, list[float]] = {}
        for fault in self.faults:
            if fault.kind == "heal":
                heals.setdefault(fault.target, []).append(fault.at)
        for fault in self.faults:
            if fault.kind != "partition":
                continue
            if fault.duration > 0:
                end = fault.at + fault.duration
            else:
                later = [t for t in heals.get(fault.target, []) if t > fault.at]
                end = min(later) if later else float("inf")
            windows.setdefault(fault.target, []).append((fault.at, end))
        return windows

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the ``index``-th fault removed (for minimization)."""
        kept = self.faults[:index] + self.faults[index + 1 :]
        return FaultSchedule(faults=kept, seed=self.seed)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", [])),
            seed=data.get("seed", 0),
        )

    def packet_chaos(self) -> "PacketChaos | None":
        """The network-mangler view of this schedule (None if no packet
        faults — the network hook then stays entirely off the hot path)."""
        packet_faults = self.packet_faults
        if not packet_faults:
            return None
        # String seeds hash stably across processes (like the core
        # machines' deterministic defaults).
        return PacketChaos(packet_faults, rng=random.Random(f"repro.chaos:{self.seed}"))


class PacketChaos:
    """Windowed packet mangling, installed as ``Network.chaos``.

    The network asks :meth:`arrivals` for the arrival times to schedule
    instead of one clean delivery: ``[]`` drops the packet (corruption),
    two times duplicate it, a single later time delays it behind its
    successors (reordering).  Faults match on the scheduled arrival time
    and, when ``target`` is set, the destination host.
    """

    def __init__(self, faults: Iterable[Fault], rng: random.Random) -> None:
        self._faults = tuple(sorted((f for f in faults if f.kind in PACKET_KINDS), key=lambda f: f.at))
        self._rng = rng
        self.mangled = 0

    def arrivals(self, packet: "Packet", src: str, dst: str, at: float) -> list[float]:
        times = [at]
        for fault in self._faults:
            if at < fault.at:
                break  # faults are time-ordered; nothing later can match
            if at >= fault.at + fault.duration:
                continue
            if fault.target and fault.target != dst:
                continue
            if fault.kind == "corrupt":
                if self._rng.random() < fault.amount:
                    self.mangled += 1
                    return []
            elif fault.kind == "duplicate":
                if self._rng.random() < fault.amount:
                    self.mangled += 1
                    times.append(times[-1] + DUPLICATE_GAP)
            else:  # reorder
                self.mangled += 1
                times = [t + fault.amount for t in times]
        return times
