"""Protocol-invariant oracle for real-UDP LBRM clusters.

:class:`LiveOracle` is the asyncio twin of
:class:`~repro.chaos.oracle.ChaosOracle`: it attaches to a started
:class:`~repro.aio.cluster.AioCluster` and grades the run against the
same receiver-reliability invariants I1–I4 (DESIGN.md §7), using the
same judgement code (:class:`~repro.chaos.invariants.InvariantLedger`).
A conformance result from the live path therefore means exactly what
the simulator's does — this is what "real-UDP parity" is graded by.

Where the simulator oracle taps the network observer, the live oracle
taps node hooks:

* I2's silence clock comes from the sender node's ``on_send`` hook
  (every outbound DATA/HEARTBEAT/RETRANS timestamps source liveness);
* I4's promotion events come from the replica nodes' ``on_event`` hooks;
* I1/I3 sweeps read machine state directly (the machines are in-process
  even though the packets cross real sockets), scheduled with
  ``loop.call_later`` instead of simulator events.

Nodes that were :meth:`~repro.aio.node.AioNode.close`\\ d mid-run are the
live equivalent of crashed simulator nodes: exempt from I1/I3 liveness
obligations, while their (durable, §2.2.3) logs still count for I3
safety.
"""

from __future__ import annotations

import asyncio

from repro.aio.cluster import AioCluster
from repro.aio.node import AioNode
from repro.chaos.invariants import SOURCE_TYPES, InvariantLedger, Violation
from repro.core.actions import Action, SendMulticast, SendUnicast
from repro.core.events import Event, PrimaryFailover, PromotedToPrimary
from repro.core.logger import LogServer
from repro.core.packets import PacketType

__all__ = ["LiveOracle"]


class LiveOracle:
    """Continuous invariant checking for one real-UDP cluster.

    Parameters mirror :class:`~repro.chaos.oracle.ChaosOracle`; the
    default ``grace`` is wider because real sockets and the asyncio
    scheduler add latency the simulator does not have.
    """

    def __init__(
        self,
        cluster: AioCluster,
        *,
        silence_slack: float = 2.0,
        grace: float = 0.5,
        check_interval: float = 0.25,
        require_delivery: bool = True,
        require_full_logs: bool = True,
    ) -> None:
        self.cluster = cluster
        self.ledger = InvariantLedger(
            cluster.config.heartbeat,
            silence_slack=silence_slack,
            grace=grace,
            max_idle_time=cluster.config.receiver.max_idle_time,
        )
        self._interval = check_interval
        self._require_delivery = require_delivery
        self._require_full_logs = require_full_logs
        self._installed = False
        self._finished = False
        self._sweep_handle: asyncio.TimerHandle | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def violations(self) -> list[Violation]:
        return self.ledger.violations

    # -- wiring ----------------------------------------------------------

    def install(self) -> None:
        """Attach taps and start sweeping.  Call after ``cluster.start()``."""
        if self._installed:
            raise RuntimeError("oracle already installed")
        if self.cluster.sender_node is None:
            raise RuntimeError("cluster not started")
        self._installed = True
        self._loop = asyncio.get_running_loop()
        self._hook_sender(self.cluster.sender_node)
        now = self._loop.time()
        for machine, node in self._primary_capable():
            self.ledger.observe_role(node.token, machine.role, now)
        for node in self.cluster.replica_nodes:
            self._hook_promotions(node)
        self._sweep_handle = self._loop.call_later(self._interval, self._sweep)

    def _hook_sender(self, node: AioNode) -> None:
        chained = node.on_send
        chained_event = node.on_event

        def on_send(action: Action, now: float) -> None:
            if chained is not None:
                chained(action, now)
            if isinstance(action, (SendMulticast, SendUnicast)):
                packet = action.packet
                ptype = int(packet.TYPE)
                if ptype in SOURCE_TYPES:
                    hb_index = (
                        packet.hb_index if ptype == int(PacketType.HEARTBEAT) else 0
                    )
                    self.ledger.on_source_tx(ptype, now, hb_index=hb_index)

        def on_event(event: Event, now: float) -> None:
            if isinstance(event, PrimaryFailover):
                self.ledger.on_failover(now, event.high_seq)
            if chained_event is not None:
                chained_event(event, now)

        node.on_send = on_send
        node.on_event = on_event

    def _hook_promotions(self, node: AioNode) -> None:
        chained = node.on_event
        subject = node.token

        def on_event(event: Event, now: float) -> None:
            if isinstance(event, PromotedToPrimary):
                self.ledger.on_promotion(subject, event.from_seq, now, epoch=event.log_epoch)
            if chained is not None:
                chained(event, now)

        node.on_event = on_event

    # -- periodic sweep ----------------------------------------------------

    def _sweep(self) -> None:
        if self._finished or self._loop is None:
            return
        now = self._loop.time()
        self._check_silence(now)
        self._check_log_safety(now)
        self._check_roles(now)
        self._check_commit_point(now)
        self._sweep_handle = self._loop.call_later(self._interval, self._sweep)

    def finish(self) -> list[Violation]:
        """Run the end-of-stream checks and stop sweeping."""
        self._finished = True
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None
        assert self._loop is not None
        now = self._loop.time()
        self._check_silence(now)
        self._check_log_safety(now)
        self._check_roles(now)
        self._check_commit_point(now)
        if self._require_delivery:
            self._check_delivery(now)
        if self._require_full_logs:
            self._check_log_completeness(now)
        return list(self.violations)

    def assert_ok(self) -> None:
        """``finish()`` and raise AssertionError on any violation."""
        violations = self.finish()
        if violations:
            lines = "\n".join(
                f"  [{v.invariant}] t={v.time:.3f} {v.subject}: {v.detail}" for v in violations
            )
            raise AssertionError(f"{len(violations)} invariant violation(s):\n{lines}")

    # -- cluster state sweeps -----------------------------------------------

    def _primary_capable(self) -> list[tuple[LogServer, AioNode]]:
        cluster = self.cluster
        pairs: list[tuple[LogServer, AioNode]] = []
        if cluster.primary is not None and cluster.primary_node is not None:
            pairs.append((cluster.primary, cluster.primary_node))
        pairs.extend(zip(cluster.replicas, cluster.replica_nodes))
        return pairs

    def _check_silence(self, now: float) -> None:
        node = self.cluster.sender_node
        if node is None or node.closed:
            self.ledger.reset_silence_clock(now)
            return
        self.ledger.check_silence(now)

    def _check_log_safety(self, now: float) -> None:
        sender = self.cluster.sender
        if sender is None:
            return
        held = 0
        for machine, _node in self._primary_capable():
            held = max(held, machine.primary_seq)
        self.ledger.check_log_safety(now, sender.released_up_to, held)

    def _check_roles(self, now: float) -> None:
        for machine, node in self._primary_capable():
            self.ledger.observe_role(node.token, machine.role, now)

    def _check_commit_point(self, now: float) -> None:
        """I6: ratchet the observed commit point and hold the trusted
        primary to it (crashed machines' logs are durable and still count)."""
        sender = self.cluster.sender
        if sender is None:
            return
        self.ledger.on_commit_point(sender.released_up_to, now)
        current = sender.primary
        for machine, node in self._primary_capable():
            if node.address != current:
                continue
            replication = machine.replication
            if replication is not None and replication.members:
                self.ledger.on_commit_point(replication.commit_seq, now)
            self.ledger.check_committed_survival(now, node.token, machine.primary_seq)
            self.ledger.check_failover_stall(now, machine.primary_seq)

    def _check_delivery(self, now: float) -> None:
        cluster = self.cluster
        high = cluster.sender.seq if cluster.sender is not None else 0
        for i, (receiver, node) in enumerate(zip(cluster.receivers, cluster.receiver_nodes)):
            if node.closed:
                continue  # receiver-reliability binds only live receivers
            self.ledger.check_delivery(
                now, f"rx{i}({node.token})", receiver.tracker, high,
                receiver.stats["recovery_failures"],
            )

    def _check_log_completeness(self, now: float) -> None:
        cluster = self.cluster
        sender = cluster.sender
        if sender is None or sender.seq == 0:
            return
        high = sender.seq
        for machine, node in zip(cluster.secondaries, cluster.secondary_nodes):
            if node.closed:
                continue
            self.ledger.check_log_completeness(now, node.token, machine.primary_seq, high)
        current = sender.primary
        for machine, node in self._primary_capable():
            if node.address != current:
                continue
            if not node.closed:
                self.ledger.check_current_primary(
                    now, node.token, machine.primary_seq, sender.released_up_to
                )
