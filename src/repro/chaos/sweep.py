"""Exhaustive crash-point failover sweep behind ``repro failover-sweep``.

Where the chaos campaign *samples* fault schedules, the sweep is a
proof by enumeration: it first replays a fixed failover scenario under
a recording simulator to learn **every distinct schedule point** (the
times at which any event fires — timer wakeups, packet deliveries,
application sends), then replays the scenario once per point with the
primary logging server crashed exactly there, grading each replay with
the full :class:`~repro.chaos.oracle.ChaosOracle` (invariants I1–I4
plus the I6 commit-point checks).  A green sweep therefore means: there
is **no moment** in the schedule at which losing the primary loses a
committed packet or stalls recovery — not "we tried a few times and it
looked fine".

Soundness of the enumeration
----------------------------

A discrete-event simulation only changes state when an event fires, so
crashing the primary between two consecutive schedule points is
indistinguishable from crashing it at the later point: the point list
*is* the complete set of distinguishable crash instants.  The baseline
is recorded **without** the oracle attached (the oracle schedules its
own periodic sweeps, which would pollute the point set with observer
artifacts); replays run with it.  Both engines enumerate the same
scenario and the sweep asserts their point lists are identical before
comparing per-point digests.

Recoverable by construction
---------------------------

The scenario only injects loss on receiver inbound links: site loggers
see the multicast stream loss-free, so every replay is a world the
protocol is *supposed* to survive and any violation is a protocol bug.
The double-failure variant (``--double``) additionally crashes whatever
node the sender trusts as primary shortly after each crash point —
with two replicas and ``min_replicas_acked=2`` the release point never
passes what *both* replicas hold, so even losing the primary **and**
the freshly promoted replica is provably zero-loss.
"""

from __future__ import annotations

import argparse
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.oracle import ChaosOracle, Violation
from repro.core.config import (
    LbrmConfig,
    LoggerConfig,
    ReceiverConfig,
    ReplicationConfig,
)
from repro.core.logger import LoggerRole
from repro.simnet.deploy import DeploymentSpec, LbrmDeployment
from repro.simnet.engine import ReferenceSimulator, Simulator
from repro.simnet.loss import BernoulliLoss

__all__ = [
    "SweepShape",
    "TIERS",
    "RecordingSimulator",
    "RecordingReferenceSimulator",
    "sweep_config",
    "enumerate_crash_points",
    "run_crash_case",
    "run_sweep_campaign",
    "build_sweep_parser",
    "run_sweep",
]

# Short timeline: the sweep replays the scenario once per schedule
# point, so each replay must be cheap.  WARMUP..ACTIVE_END carries the
# paced data stream; DRAIN covers failover detection (primary_timeout +
# failover_wait), handover, and receiver recovery.
WARMUP = 0.25
ACTIVE_END = 2.25
DRAIN = 5.0

#: Crash-time grid resolution.  Schedule points are rounded to this
#: before deduplication; two events closer than a nanosecond are the
#: same crash instant for every protocol timer in the system.
_ROUND = 9


def sweep_config(*, min_replicas_acked: int = 1) -> LbrmConfig:
    """The sweep's protocol config: generous retry budgets (recovery
    exhaustion must never masquerade as a failover bug) and failover
    timers tightened so detection + promotion fit inside DRAIN."""
    return LbrmConfig(
        receiver=ReceiverConfig(max_nack_retries=10),
        logger=LoggerConfig(max_upstream_retries=30),
        replication=ReplicationConfig(
            min_replicas_acked=min_replicas_acked,
            update_retry=0.1,
            primary_timeout=0.6,
            failover_wait=0.2,
        ),
    )


@dataclass(frozen=True)
class SweepShape:
    """Deployment dimensions and workload for one sweep tier."""

    n_sites: int
    receivers_per_site: int
    n_replicas: int
    packets: int
    rx_loss: float


TIERS: dict[str, SweepShape] = {
    # micro: the tier-1 test shape — small enough to enumerate and
    # replay inside the regular pytest budget.
    "micro": SweepShape(n_sites=1, receivers_per_site=2, n_replicas=1, packets=3, rx_loss=0.05),
    "quick": SweepShape(n_sites=2, receivers_per_site=2, n_replicas=2, packets=6, rx_loss=0.05),
    "full": SweepShape(n_sites=3, receivers_per_site=3, n_replicas=2, packets=10, rx_loss=0.08),
}

#: Offsets (after the first crash) for the double-failure variant's
#: second crash: one inside the failover window, one after promotion
#: has almost certainly completed (detection is bounded by
#: 2 x primary_timeout + failover_wait = 1.4 s under ``sweep_config``).
DOUBLE_OFFSETS = (0.9, 1.6)

#: When the ``--readopt`` variant wipe-restarts a follower: fixed at
#: mid active window so pushes keep flowing afterwards — the restarted
#: follower's regressed acknowledgement is what triggers re-adoption
#: and backfill, and that ack rides on the next push it receives.
READOPT_WIPE_AT = 1.0


# -- recording engines ------------------------------------------------------


class RecordingSimulator(Simulator):
    """Timer-wheel engine that records every distinct schedule point."""

    def __init__(self) -> None:
        super().__init__()
        self.points: set[float] = set()

    def schedule(self, at, callback, *args):
        t = at if at > self.now else self.now
        self.points.add(round(t, _ROUND))
        return super().schedule(at, callback, *args)


class RecordingReferenceSimulator(ReferenceSimulator):
    """Pure-heap engine that records every distinct schedule point."""

    def __init__(self) -> None:
        super().__init__()
        self.points: set[float] = set()

    def schedule(self, at, callback, *args):
        t = at if at > self.now else self.now
        self.points.add(round(t, _ROUND))
        return super().schedule(at, callback, *args)


# -- scenario ----------------------------------------------------------


def _spec(shape: SweepShape, seed: int, config: LbrmConfig) -> DeploymentSpec:
    return DeploymentSpec(
        n_sites=shape.n_sites,
        receivers_per_site=shape.receivers_per_site,
        n_replicas=shape.n_replicas,
        config=config,
        seed=seed,
    )


def _apply_receiver_loss(dep: LbrmDeployment, shape: SweepShape) -> None:
    """Receiver-only inbound loss: site loggers and the primary side stay
    loss-free so every crash point leaves a recoverable world."""
    if not shape.rx_loss:
        return
    for node in dep.receiver_nodes:
        dep.network.host(node.name).inbound_loss = BernoulliLoss(
            shape.rx_loss, dep.streams.stream(f"sweep-loss:{node.name}")
        )


def _send_times(shape: SweepShape) -> list[float]:
    span = ACTIVE_END - WARMUP
    return [
        round(WARMUP + (i + 0.5) * span / shape.packets, _ROUND)
        for i in range(shape.packets)
    ]


def _drive(dep: LbrmDeployment, shape: SweepShape) -> None:
    dep.start()
    for i, send_at in enumerate(_send_times(shape)):
        dep.advance(send_at - dep.sim.now)
        dep.send(f"sweep-{i}".encode())
    dep.advance(ACTIVE_END - dep.sim.now + DRAIN)


def enumerate_crash_points(shape: SweepShape, seed: int, engine: str = "fast",
                           config: LbrmConfig | None = None) -> list[float]:
    """Replay the fault-free scenario under a recording engine and return
    every distinct schedule point in the crash window ``[0, ACTIVE_END]``."""
    config = config or sweep_config()
    sim = RecordingSimulator() if engine == "fast" else RecordingReferenceSimulator()
    dep = LbrmDeployment(_spec(shape, seed, config), sim=sim)
    _apply_receiver_loss(dep, shape)
    _drive(dep, shape)
    points = set(sim.points)
    points.update(_send_times(shape))  # the crash-just-before-send instants
    return sorted(t for t in points if 0.0 <= t <= ACTIVE_END)


# -- one replay ----------------------------------------------------------


@dataclass
class CrashOutcome:
    violations: list[Violation]
    digest: str
    promoted: str | None
    log_epoch: int


def _crash_current_primary(dep: LbrmDeployment) -> None:
    """Crash whichever node the sender currently trusts as primary (the
    double-failure variant's dynamic second target)."""
    assert dep.sender is not None
    current = dep.sender.primary
    assert dep.primary_node is not None
    for node in (dep.primary_node, *dep.replica_nodes):
        if node.name == current and node.alive:
            node.crash()
            return


def _wipe_restart_replica(dep: LbrmDeployment) -> None:
    """Wipe-restart the first live *follower* (the readopt variant).

    The target must still be in the replica role and must not be the
    node the sender currently trusts — wiping a promoted primary would
    simulate losing the only authoritative copy, which is outside the
    durable-log model this sweep proves things about.
    """
    assert dep.sender is not None
    current = dep.sender.primary
    for machine, node in zip(dep.replicas, dep.replica_nodes):
        if not node.alive or node.name == current:
            continue
        if machine.role is not LoggerRole.REPLICA:
            continue
        machine.wipe_restart(dep.sim.now)
        return


def run_crash_case(
    shape: SweepShape,
    seed: int,
    crash_at: float,
    engine: str = "fast",
    config: LbrmConfig | None = None,
    second_crash_at: float | None = None,
    wipe_at: float | None = None,
) -> CrashOutcome:
    """One replay: crash the primary at ``crash_at``, grade with the oracle."""
    config = config or sweep_config()
    sim = Simulator() if engine == "fast" else ReferenceSimulator()
    dep = LbrmDeployment(_spec(shape, seed, config), sim=sim)
    _apply_receiver_loss(dep, shape)
    # Scheduled before start: among equal-time events the crash fires
    # first (insertion-order tie-break), i.e. "just before" the point.
    assert dep.primary_node is not None
    sim.schedule(crash_at, dep.primary_node.crash)
    if second_crash_at is not None:
        sim.schedule(second_crash_at, _crash_current_primary, dep)
    if wipe_at is not None:
        sim.schedule(wipe_at, _wipe_restart_replica, dep)
    oracle = ChaosOracle(dep)
    oracle.install()
    _drive(dep, shape)
    violations = oracle.finish()
    assert dep.sender is not None
    promoted = None
    if dep.sender.primary != dep.primary_node.name:
        promoted = str(dep.sender.primary)
    return CrashOutcome(
        violations=violations,
        digest=_digest(dep),
        promoted=promoted,
        log_epoch=dep.sender.log_epoch,
    )


def _digest(dep: LbrmDeployment) -> str:
    """Fingerprint of the end state, for cross-engine agreement checks."""
    assert dep.sender is not None
    state = {
        "seq": dep.sender.seq,
        "released": dep.sender.released_up_to,
        "primary": str(dep.sender.primary),
        "log_epoch": dep.sender.log_epoch,
        "network": dep.network.stats,
        "logs": {
            node.name: machine.primary_seq
            for machine, node in zip(
                [dep.primary, *dep.replicas],
                [dep.primary_node, *dep.replica_nodes],
            )
        },
        "receivers": {
            node.name: [s for s in range(1, dep.sender.seq + 1) if rx.tracker.has(s)]
            for rx, node in zip(dep.receivers, dep.receiver_nodes)
        },
    }
    return hashlib.sha256(json.dumps(state, sort_keys=True).encode()).hexdigest()[:16]


# -- the sweep ----------------------------------------------------------


def run_sweep_campaign(
    seed: int,
    tier: str = "quick",
    engines: tuple[str, ...] = ("fast", "reference"),
    double: bool = False,
    max_points: int | None = None,
    readopt: bool = False,
) -> dict:
    """Enumerate crash points and replay each under every engine.

    Returns the (JSON-stable) report dict.  ``double=True`` runs the
    double-failure variant: two replicas with ``min_replicas_acked=2``
    and a second, dynamically targeted crash ``DOUBLE_OFFSETS`` after
    each point.  ``readopt=True`` additionally wipe-restarts one
    follower at ``READOPT_WIPE_AT`` in every replay: the commit point
    must never keep counting the vanished prefix (the stale
    FollowerState re-adoption path), so it also runs with two replicas
    and ``min_replicas_acked=2`` — the surviving follower keeps every
    committed packet reachable.
    """
    shape = TIERS[tier]
    if double or readopt:
        shape = SweepShape(
            n_sites=shape.n_sites,
            receivers_per_site=shape.receivers_per_site,
            n_replicas=max(shape.n_replicas, 2),
            packets=shape.packets,
            rx_loss=shape.rx_loss,
        )
    config = sweep_config(min_replicas_acked=2 if (double or readopt) else 1)
    wipe_at = round(READOPT_WIPE_AT, _ROUND) if readopt else None

    per_engine_points = {
        engine: enumerate_crash_points(shape, seed, engine, config) for engine in engines
    }
    point_lists = list(per_engine_points.values())
    points_agree = all(p == point_lists[0] for p in point_lists[1:])
    points = sorted(set().union(*point_lists))
    truncated = 0
    if max_points is not None and len(points) > max_points:
        # Even coverage of the window rather than a prefix: take every
        # k-th point.  The report records the cut so a capped run never
        # reads as exhaustive.
        step = len(points) / max_points
        kept = [points[int(i * step)] for i in range(max_points)]
        truncated = len(points) - len(kept)
        points = kept

    cases = []
    failures = []
    total_violations = 0
    variants: list[float | None] = [None]
    if double:
        variants = [round(offset, _ROUND) for offset in DOUBLE_OFFSETS]
    for crash_at in points:
        for offset in variants:
            second = None if offset is None else round(crash_at + offset, _ROUND)
            per_engine = {}
            for engine in engines:
                outcome = run_crash_case(
                    shape, seed, crash_at, engine, config, second, wipe_at=wipe_at
                )
                per_engine[engine] = {
                    "digest": outcome.digest,
                    "promoted": outcome.promoted,
                    "log_epoch": outcome.log_epoch,
                    "violations": [v.to_dict() for v in outcome.violations],
                }
                total_violations += len(outcome.violations)
            engines_agree = len({e["digest"] for e in per_engine.values()}) == 1
            case = {
                "crash_at": crash_at,
                "second_crash_at": second,
                "wipe_at": wipe_at,
                "engines": per_engine,
                "engines_agree": engines_agree,
            }
            cases.append(case)
            if any(e["violations"] for e in per_engine.values()) or not engines_agree:
                failures.append({
                    "crash_at": crash_at,
                    "second_crash_at": second,
                    "reproducer": (
                        f"repro failover-sweep --{tier} --seed {seed}"
                        + (" --double" if double else "")
                        + (" --readopt" if readopt else "")
                    ),
                })
    if not points_agree:
        failures.append({
            "crash_at": None,
            "second_crash_at": None,
            "reproducer": "engines enumerated different schedule-point lists",
        })
    return {
        "sweep": {
            "seed": seed,
            "tier": tier,
            "engines": list(engines),
            "double": double,
            "readopt": readopt,
            "wipe_at": wipe_at,
            "shape": {
                "n_sites": shape.n_sites,
                "receivers_per_site": shape.receivers_per_site,
                "n_replicas": shape.n_replicas,
                "packets": shape.packets,
                "rx_loss": shape.rx_loss,
            },
            "points": points,
            "points_agree": points_agree,
            "points_truncated": truncated,
        },
        "cases": cases,
        "failures": failures,
        "totals": {
            "points": len(points),
            "replays": len(cases) * len(engines),
            "violations": total_violations,
        },
    }


# -- CLI ----------------------------------------------------------


def build_sweep_parser(parser: argparse.ArgumentParser) -> None:
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--micro", action="store_const", const="micro", dest="tier",
                      help="smallest sweep (the tier-1 test shape)")
    tier.add_argument("--quick", action="store_const", const="quick", dest="tier",
                      help="CI sweep (default): 2 sites, 2 replicas, 6 packets")
    tier.add_argument("--full", action="store_const", const="full", dest="tier",
                      help="large sweep: 3 sites, 2 replicas, 10 packets")
    parser.set_defaults(tier="quick")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed (default 0)")
    parser.add_argument("--engine", choices=("both", "fast", "reference"), default="both",
                        help="simulation engine(s) to replay under (default both)")
    parser.add_argument("--double", action="store_true",
                        help="double-failure variant: also crash the promoted primary")
    parser.add_argument("--readopt", action="store_true",
                        help="follower-restart variant: wipe one follower's state "
                             "mid-stream in every replay (exercises stale-state "
                             "re-adoption and backfill)")
    parser.add_argument("--max-points", type=int, default=None, metavar="N",
                        help="cap the replayed points at N (evenly spaced; "
                             "the report records the truncation)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write FAILOVER_SWEEP_seed<seed>.json into DIR")
    parser.add_argument("--json", action="store_true", help="print the full report as JSON")


def run_sweep(args: argparse.Namespace) -> int:
    engines = ("fast", "reference") if args.engine == "both" else (args.engine,)
    report = run_sweep_campaign(
        args.seed, tier=args.tier, engines=engines, double=args.double,
        max_points=args.max_points, readopt=args.readopt,
    )
    text = json.dumps(report, sort_keys=True, indent=2)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"FAILOVER_SWEEP_seed{args.seed}.json").write_text(text + "\n")
    if args.json:
        print(text)
    else:
        meta = report["sweep"]
        totals = report["totals"]
        print(
            f"failover sweep: seed={meta['seed']} tier={meta['tier']} "
            f"engines={','.join(meta['engines'])}"
            + (" double" if meta["double"] else "")
            + (" readopt" if meta["readopt"] else "")
        )
        print(
            f"  points={totals['points']} replays={totals['replays']} "
            f"violations={totals['violations']} "
            f"points_agree={'yes' if meta['points_agree'] else 'NO'}"
            + (f" (truncated {meta['points_truncated']})" if meta["points_truncated"] else "")
        )
        for failure in report["failures"]:
            print(
                f"FAILURE at crash_at={failure['crash_at']} "
                f"second={failure['second_crash_at']}: {failure['reproducer']}"
            )
    return 1 if report["failures"] else 0
