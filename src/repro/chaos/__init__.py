"""repro.chaos — declarative fault injection and protocol invariants.

LBRM's headline claim is receiver-side reliability *under failure*
(§2.1 MaxIT silence bound, §2.2.1 local recovery, §2.2.3 primary
failover).  This package turns the ad-hoc fault code that used to live
inside individual tests into one reusable layer:

* :mod:`repro.chaos.schedule` — :class:`Fault` / :class:`FaultSchedule`,
  a declarative, serializable description of *what goes wrong when*
  (crash/restart/pause/resume nodes, skew clocks, partition/heal sites,
  duplicate/corrupt/reorder packets), composing with the existing
  :mod:`repro.simnet.loss` models.
* :mod:`repro.chaos.controller` — :class:`ChaosController`, which
  compiles a schedule onto a built :class:`~repro.simnet.deploy.LbrmDeployment`.
* :mod:`repro.chaos.oracle` — :class:`ChaosOracle`, a runtime checker
  for the paper's receiver-reliability invariants (see DESIGN.md §7).
* :mod:`repro.chaos.campaign` — the randomized conformance campaign
  behind ``repro chaos``: seeded schedule sampling, runs under both
  engines, reproducer seeds and schedule minimization on violation.
* :mod:`repro.chaos.hierarchy` — the same conformance contract on
  k-level repair trees behind ``repro hierarchy-chaos``: hub crashes
  and mid-epoch ``reparent`` mutations, with cross-engine digests that
  fold in the tree surgery (DESIGN §11).
* :mod:`repro.chaos.invariants` — :class:`InvariantLedger`, the
  transport-agnostic judgement shared by both oracles.
* :mod:`repro.chaos.live` — :class:`LiveOracle`, the same invariants
  checked against a real-UDP :class:`~repro.aio.cluster.AioCluster`.
* :mod:`repro.chaos.sweep` — the exhaustive crash-point failover sweep
  behind ``repro failover-sweep``: enumerate every distinct schedule
  point, crash the primary at each, grade every replay.
"""

from repro.chaos.campaign import run_campaign, sample_schedule
from repro.chaos.controller import ChaosController
from repro.chaos.hierarchy import run_hierarchy_campaign, sample_hierarchy_schedule
from repro.chaos.invariants import InvariantLedger, Violation
from repro.chaos.live import LiveOracle
from repro.chaos.oracle import ChaosOracle
from repro.chaos.schedule import Fault, FaultSchedule, PacketChaos
from repro.chaos.sweep import enumerate_crash_points, run_crash_case, run_sweep_campaign

__all__ = [
    "Fault",
    "FaultSchedule",
    "PacketChaos",
    "ChaosController",
    "ChaosOracle",
    "InvariantLedger",
    "LiveOracle",
    "Violation",
    "enumerate_crash_points",
    "run_campaign",
    "run_crash_case",
    "run_hierarchy_campaign",
    "run_sweep_campaign",
    "sample_hierarchy_schedule",
    "sample_schedule",
]
