"""Compiling a :class:`FaultSchedule` onto a built deployment.

:class:`ChaosController` is the bridge between the inert schedule and
the running simulation:

* node faults become simulator events calling the :class:`SimNode`
  fault hooks (``crash``/``restart``/``pause``/``resume``/clock skew);
* partitions become :class:`~repro.simnet.loss.BurstLoss` windows
  layered over the site's existing tail-circuit loss models;
* packet faults become one :class:`~repro.chaos.schedule.PacketChaos`
  installed as the network's ``chaos`` hook;
* tree faults become calls into the deployment's
  :class:`~repro.simnet.hierarchy.HierarchyRuntime` — a mid-epoch
  ``reparent`` moves the target logger to its best live alternative
  parent (a no-op, uncounted, on flat deployments or when no
  alternative exists, so the same schedule stays valid everywhere).

The controller also keeps the bookkeeping the oracle and the campaign
read back: every applied fault bumps the ``chaos.faults_injected``
counter and lands in :attr:`applied`.
"""

from __future__ import annotations

from repro import obs
from repro.chaos.schedule import Fault, FaultSchedule
from repro.simnet.deploy import LbrmDeployment
from repro.simnet.loss import BurstLoss
from repro.simnet.node import SimNode

__all__ = ["ChaosController"]


class ChaosController:
    """Applies one schedule to one deployment (build once, install once)."""

    def __init__(self, deployment: LbrmDeployment, schedule: FaultSchedule) -> None:
        self.deployment = deployment
        self.schedule = schedule
        self.faults_injected = 0
        # (sim time, fault) in application order — the campaign report's
        # ground truth for what actually happened.
        self.applied: list[tuple[float, Fault]] = []
        self._installed = False
        self._obs_faults = obs.registry().counter("chaos.faults_injected")

    def install(self) -> None:
        """Arm the schedule.  Call after the deployment is built and
        before the simulation runs past the earliest fault time."""
        if self._installed:
            raise RuntimeError("schedule already installed")
        self._installed = True
        sim = self.deployment.sim
        for fault in self.schedule.node_faults:
            sim.schedule(fault.at, self._apply_node_fault, fault)
        for fault in self.schedule.tree_faults:
            sim.schedule(fault.at, self._apply_tree_fault, fault)
        for site_name, windows in self.schedule.partition_windows().items():
            self._install_partition(site_name, windows)
        chaos = self.schedule.packet_chaos()
        if chaos is not None:
            self.deployment.network.chaos = chaos
            for fault in self.schedule.packet_faults:
                # The mangler is passive; mark the window opening as the
                # injection moment so counters line up with the schedule.
                sim.schedule(fault.at, self._note, fault)

    # -- application ----------------------------------------------------

    def _apply_node_fault(self, fault: Fault) -> None:
        node = self.deployment.node(fault.target)
        if fault.kind == "crash":
            node.crash()
        elif fault.kind == "restart":
            node.restart()
        elif fault.kind == "pause":
            node.pause()
        elif fault.kind == "resume":
            node.resume()
        else:  # skew
            self._apply_skew(node, fault.amount)
        self._note(fault)

    def _apply_tree_fault(self, fault: Fault) -> None:
        hierarchy = self.deployment.hierarchy
        if hierarchy is None:
            return  # flat deployment: no tree to mutate
        move = hierarchy.force_reparent(fault.target)
        if move is not None:
            self._note(fault)

    def _apply_skew(self, node: SimNode, amount: float) -> None:
        node.clock_skew = amount
        # Pending wakeups were converted with the old skew; re-arm so
        # machines fire at their deadlines under the new clock.
        if not node.crashed:
            node._reschedule()

    def _install_partition(self, site_name: str, windows: list[tuple[float, float]]) -> None:
        site = self.deployment.network.site(site_name)
        finite = [(s, e if e != float("inf") else 1e18) for s, e in windows]
        # Both directions die: that is what a severed tail circuit does.
        # BurstLoss keeps the link's previous model as its base, so a
        # partition composes with Bernoulli/Gilbert-Elliott background
        # loss instead of replacing it.
        site.tail_down.loss = BurstLoss(finite, base=site.tail_down.loss)
        site.tail_up.loss = BurstLoss(finite, base=site.tail_up.loss)
        sim = self.deployment.sim
        for start, _end in windows:
            fault = next(
                f for f in self.schedule.faults if f.kind == "partition"
                and f.target == site_name and f.at == start
            )
            sim.schedule(start, self._note, fault)

    def _note(self, fault: Fault) -> None:
        self.faults_injected += 1
        self._obs_faults.inc()
        self.applied.append((self.deployment.sim.now, fault))
