"""The k-level hierarchy chaos campaign behind ``repro hierarchy-chaos``.

Same contract as :mod:`repro.chaos.campaign`, aimed at deep repair
trees (DESIGN §11): every case builds a ``depth >= 3`` deployment whose
interior hubs sit *between* the site loggers and the primary, and the
fault sampler leans on the tree — crash-and-restart a hub, crash one
for good mid-stream, or inject a mid-epoch ``reparent`` mutation — on
top of the usual receiver/site-logger/partition noise.

The oracle contract is unchanged: the I1–I6 invariants must hold under
every sampled schedule, on **both** engines, with bit-identical end
states.  The digest additionally folds in the hierarchy snapshot (final
parent map, every applied move, manager counters), so the two engines
must agree not just on what the receivers got but on the exact sequence
of tree surgery that got them there.

Recoverable by construction: the source and the primary stay alive, at
most one *permanent* hub crash per schedule (its subtree must re-parent
around it — that is the scenario under test, ISSUE 10), and every other
disturbance heals inside the drain window's retry budgets.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.campaign import ACTIVE_END, DRAIN, WARMUP
from repro.chaos.controller import ChaosController
from repro.chaos.oracle import ChaosOracle, Violation
from repro.chaos.schedule import Fault, FaultSchedule
from repro.core.config import LbrmConfig, LoggerConfig, ReceiverConfig
from repro.core.hierarchy import interior_name, plan_level_sizes
from repro.simnet.deploy import DeploymentSpec, LbrmDeployment
from repro.simnet.engine import ReferenceSimulator, Simulator

__all__ = [
    "HierarchyShape",
    "TIERS",
    "sample_hierarchy_schedule",
    "run_hierarchy_case",
    "run_hierarchy_campaign",
    "build_hierarchy_chaos_parser",
    "run_hierarchy_chaos",
]

# Retry budgets match the flat campaign: every samplable fault fits.
_CAMPAIGN_CONFIG = LbrmConfig(
    receiver=ReceiverConfig(max_nack_retries=10),
    logger=LoggerConfig(max_upstream_retries=30),
)


@dataclass(frozen=True)
class HierarchyShape:
    """Deployment dimensions and workload for one campaign tier."""

    runs: int
    n_sites: int
    receivers_per_site: int
    n_replicas: int
    depth: int
    fanout: int
    packets: int

    def hubs(self) -> list[str]:
        """Interior-logger names this shape's deployment will build."""
        sizes = plan_level_sizes(self.n_sites, self.depth, self.fanout)
        return [
            interior_name(level, index)
            for level in sorted(sizes)
            for index in range(sizes[level])
        ]


TIERS: dict[str, HierarchyShape] = {
    "quick": HierarchyShape(
        runs=3, n_sites=6, receivers_per_site=1, n_replicas=1,
        depth=3, fanout=3, packets=8,
    ),
    "full": HierarchyShape(
        runs=6, n_sites=9, receivers_per_site=2, n_replicas=1,
        depth=3, fanout=3, packets=12,
    ),
}


# -- schedule sampling ----------------------------------------------------


def sample_hierarchy_schedule(rng: random.Random, shape: HierarchyShape) -> FaultSchedule:
    """Draw one recoverable-by-construction schedule for a deep tree."""
    sites = [f"site{i}" for i in range(1, shape.n_sites + 1)]
    receivers = [
        f"site{i}-rx{j}"
        for i in range(1, shape.n_sites + 1)
        for j in range(shape.receivers_per_site)
    ]
    loggers = [f"site{i}-logger" for i in range(1, shape.n_sites + 1)]
    hubs = shape.hubs()
    faults: list[Fault] = []

    def at(lo: float = 0.8, hi: float = 7.8) -> float:
        return round(rng.uniform(lo, hi), 3)

    def dur(lo: float, hi: float) -> float:
        return round(rng.uniform(lo, hi), 3)

    # Tree surgery is the point of this campaign: every schedule carries
    # at least one hub disturbance or explicit mutation.
    menu = [
        "hub-blip", "hub-blip", "hub-crash", "reparent", "reparent",
        "rx-blip", "logger-blip", "partition",
    ]
    hub_crash_budget = 1  # at most one *permanent* hub loss per schedule
    for pick_index in range(rng.randrange(2, 5)):
        pick = rng.choice(menu) if pick_index else rng.choice(
            ["hub-blip", "hub-crash", "reparent"]
        )
        if pick == "hub-blip":
            start = at()
            victim = rng.choice(hubs)
            faults.append(Fault("crash", start, victim))
            faults.append(Fault("restart", round(start + dur(0.3, 2.0), 3), victim))
        elif pick == "hub-crash":
            if not hub_crash_budget:
                continue
            hub_crash_budget = 0
            faults.append(Fault("crash", at(1.0, 5.0), rng.choice(hubs)))
        elif pick == "reparent":
            # Mid-epoch mutation of a live edge: a site logger or a hub
            # is shoved onto its best alternative parent.
            faults.append(Fault("reparent", at(), rng.choice(loggers + hubs)))
        elif pick == "rx-blip":
            start = at()
            victim = rng.choice(receivers)
            faults.append(Fault("crash", start, victim))
            faults.append(Fault("restart", round(start + dur(0.3, 2.0), 3), victim))
        elif pick == "logger-blip":
            start = at()
            victim = rng.choice(loggers)
            faults.append(Fault("crash", start, victim))
            faults.append(Fault("restart", round(start + dur(0.3, 2.0), 3), victim))
        else:  # partition
            faults.append(
                Fault("partition", at(), rng.choice(sites), duration=dur(0.5, 2.0))
            )
    return FaultSchedule(faults=tuple(faults), seed=rng.randrange(2**32))


# -- single case ----------------------------------------------------------


@dataclass
class HierarchyCaseOutcome:
    violations: list[Violation]
    faults_injected: int
    reparents: int
    digest: str


def run_hierarchy_case(
    shape: HierarchyShape,
    schedule: FaultSchedule,
    case_seed: int,
    engine: str = "fast",
) -> HierarchyCaseOutcome:
    """Run one schedule against one deep deployment under one engine."""
    sim = Simulator() if engine == "fast" else ReferenceSimulator()
    spec = DeploymentSpec(
        n_sites=shape.n_sites,
        receivers_per_site=shape.receivers_per_site,
        n_replicas=shape.n_replicas,
        depth=shape.depth,
        fanout=shape.fanout,
        config=_CAMPAIGN_CONFIG,
        seed=case_seed,
    )
    dep = LbrmDeployment(spec, sim=sim)
    controller = ChaosController(dep, schedule)
    controller.install()
    oracle = ChaosOracle(dep, controller)
    oracle.install()
    dep.start()
    span = ACTIVE_END - WARMUP
    for i in range(shape.packets):
        send_at = WARMUP + (i + 0.5) * span / shape.packets
        dep.advance(send_at - dep.sim.now)
        dep.send(f"hchaos-{i}".encode())
    dep.advance(ACTIVE_END - dep.sim.now + DRAIN)
    violations = oracle.finish()
    assert dep.hierarchy is not None
    stats = dep.hierarchy.manager.stats
    reparents = sum(v for k, v in stats.items() if k.startswith("reparents_"))
    return HierarchyCaseOutcome(
        violations=violations,
        faults_injected=controller.faults_injected,
        reparents=reparents,
        digest=_digest(dep),
    )


def _digest(dep: LbrmDeployment) -> str:
    """End-state fingerprint: receiver contents *and* the tree surgery."""
    assert dep.sender is not None and dep.hierarchy is not None
    state = {
        "seq": dep.sender.seq,
        "released": dep.sender.released_up_to,
        "primary": str(dep.sender.primary),
        "network": dep.network.stats,
        "receivers": {
            node.name: [s for s in range(1, dep.sender.seq + 1) if rx.tracker.has(s)]
            for rx, node in zip(dep.receivers, dep.receiver_nodes)
        },
        "hierarchy": dep.hierarchy.to_dict(),
    }
    return hashlib.sha256(json.dumps(state, sort_keys=True).encode()).hexdigest()[:16]


def _minimize(
    shape: HierarchyShape, schedule: FaultSchedule, case_seed: int, engine: str
) -> FaultSchedule:
    """Greedily drop faults while the violation persists (ddmin-lite)."""
    current = schedule
    index = len(current.faults) - 1
    while index >= 0:
        candidate = current.without(index)
        if run_hierarchy_case(shape, candidate, case_seed, engine).violations:
            current = candidate
        index -= 1
    return current


# -- the campaign ----------------------------------------------------------


def _case_seed(campaign_seed: int, index: int) -> int:
    digest = hashlib.sha256(f"hierarchy-chaos:{campaign_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def run_hierarchy_campaign(
    seed: int,
    tier: str = "quick",
    engines: tuple[str, ...] = ("fast", "reference"),
    runs: int | None = None,
) -> dict:
    """Run the deep-tree campaign; returns the (JSON-stable) report dict."""
    shape = TIERS[tier]
    n_runs = runs if runs is not None else shape.runs
    cases = []
    failures = []
    total_faults = 0
    total_violations = 0
    total_reparents = 0
    for index in range(n_runs):
        case_seed = _case_seed(seed, index)
        schedule = sample_hierarchy_schedule(
            random.Random(f"hierarchy-chaos:{seed}:{index}"), shape
        )
        per_engine = {}
        for engine in engines:
            outcome = run_hierarchy_case(shape, schedule, case_seed, engine)
            per_engine[engine] = {
                "digest": outcome.digest,
                "faults_injected": outcome.faults_injected,
                "reparents": outcome.reparents,
                "violations": [v.to_dict() for v in outcome.violations],
            }
            total_faults += outcome.faults_injected
            total_violations += len(outcome.violations)
            total_reparents += outcome.reparents
        engines_agree = len({e["digest"] for e in per_engine.values()}) == 1
        case = {
            "index": index,
            "case_seed": case_seed,
            "schedule": schedule.to_dict(),
            "engines": per_engine,
            "engines_agree": engines_agree,
        }
        cases.append(case)
        violated = any(e["violations"] for e in per_engine.values())
        if violated or not engines_agree:
            minimized = _minimize(shape, schedule, case_seed, engines[0])
            failures.append({
                "index": index,
                "case_seed": case_seed,
                "reproducer": f"repro hierarchy-chaos --{tier} --seed {seed} --runs {n_runs}",
                "minimized_schedule": minimized.to_dict(),
            })
    return {
        "campaign": {
            "seed": seed,
            "tier": tier,
            "runs": n_runs,
            "engines": list(engines),
            "shape": {
                "n_sites": shape.n_sites,
                "receivers_per_site": shape.receivers_per_site,
                "n_replicas": shape.n_replicas,
                "depth": shape.depth,
                "fanout": shape.fanout,
                "packets": shape.packets,
            },
        },
        "cases": cases,
        "failures": failures,
        "totals": {
            "faults_injected": total_faults,
            "violations": total_violations,
            "reparents": total_reparents,
        },
    }


# -- CLI ----------------------------------------------------------


def build_hierarchy_chaos_parser(parser: argparse.ArgumentParser) -> None:
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--quick", action="store_const", const="quick", dest="tier",
                      help="small campaign (default): 3 cases, 6 sites, depth 3")
    tier.add_argument("--full", action="store_const", const="full", dest="tier",
                      help="larger campaign: 6 cases, 9 sites x 2 receivers")
    parser.set_defaults(tier="quick")
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    parser.add_argument("--runs", type=int, default=None, help="override the tier's case count")
    parser.add_argument("--engine", choices=("both", "fast", "reference"), default="both",
                        help="simulation engine(s) to run each case under (default both)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write HIERARCHY_CHAOS_seed<seed>.json into DIR")
    parser.add_argument("--json", action="store_true", help="print the full report as JSON")


def run_hierarchy_chaos(args: argparse.Namespace) -> int:
    engines = ("fast", "reference") if args.engine == "both" else (args.engine,)
    report = run_hierarchy_campaign(args.seed, tier=args.tier, engines=engines, runs=args.runs)
    text = json.dumps(report, sort_keys=True, indent=2)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"HIERARCHY_CHAOS_seed{args.seed}.json").write_text(text + "\n")
    if args.json:
        print(text)
    else:
        meta = report["campaign"]
        print(
            f"hierarchy chaos campaign: seed={meta['seed']} tier={meta['tier']} "
            f"cases={meta['runs']} depth={meta['shape']['depth']} "
            f"fanout={meta['shape']['fanout']} engines={','.join(meta['engines'])}"
        )
        for case in report["cases"]:
            n_violations = sum(len(e["violations"]) for e in case["engines"].values())
            reparents = max(e["reparents"] for e in case["engines"].values())
            print(
                f"  case {case['index']}: seed={case['case_seed']} "
                f"faults={len(case['schedule']['faults'])} "
                f"reparents={reparents} violations={n_violations} "
                f"engines_agree={'yes' if case['engines_agree'] else 'NO'}"
            )
        totals = report["totals"]
        print(f"totals: faults_injected={totals['faults_injected']} "
              f"reparents={totals['reparents']} violations={totals['violations']}")
        for failure in report["failures"]:
            print(f"FAILURE in case {failure['index']} (case_seed {failure['case_seed']})")
            print(f"  reproducer: {failure['reproducer']}")
            print(f"  minimized schedule: {json.dumps(failure['minimized_schedule'], sort_keys=True)}")
    return 1 if report["failures"] else 0
