"""Transport-agnostic bookkeeping for the LBRM protocol invariants.

:class:`InvariantLedger` holds the state and judgement logic behind the
receiver-reliability invariants I1–I4 (DESIGN.md §7) without knowing
*where* the observations come from.  Two adapters drive it:

* :class:`~repro.chaos.oracle.ChaosOracle` feeds it from a simulated
  :class:`~repro.simnet.deploy.LbrmDeployment` (network observer taps,
  simulator-scheduled sweeps);
* :class:`~repro.chaos.live.LiveOracle` feeds it from a real-UDP
  :class:`~repro.aio.cluster.AioCluster` (node ``on_send``/``on_event``
  taps, asyncio-scheduled sweeps).

Keeping the judgement in one place guarantees the live path is graded
against exactly the invariants the simulator is — a conformance result
from either engine means the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.config import HeartbeatConfig
from repro.core.logger import LoggerRole
from repro.core.packets import PacketType

__all__ = ["InvariantLedger", "Violation", "SOURCE_TYPES"]

#: Packet types that prove the source is alive (I2's silence clock).
SOURCE_TYPES = frozenset(
    {int(PacketType.DATA), int(PacketType.HEARTBEAT), int(PacketType.RETRANS)}
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One observed invariant breach."""

    # "delivery" | "silence" | "log-safety" | "log-completeness" |
    # "promotion" | "committed-loss" | "stale-epoch" | "failover-stall"
    invariant: str
    time: float
    subject: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "subject": self.subject,
            "detail": self.detail,
        }


class InvariantLedger:
    """Accumulates observations and records invariant violations.

    Adapters call the ``on_*`` methods as events arrive and the
    ``check_*`` methods from their periodic sweeps / end-of-run hooks;
    each check appends to :attr:`violations` (and bumps the
    ``chaos.violations`` obs counter) when its invariant is breached.
    """

    def __init__(
        self,
        heartbeat: HeartbeatConfig,
        *,
        silence_slack: float = 2.0,
        grace: float = 0.25,
        max_idle_time: float | None = None,
    ) -> None:
        self.violations: list[Violation] = []
        self._hb = heartbeat
        self._slack = silence_slack
        self._grace = grace
        # I6's stall bound: recovery after a failover must resume within
        # about one MaxIT.  Defaults to h_max when not configured.
        self._max_idle = max_idle_time if max_idle_time is not None else heartbeat.h_max
        self._last_tx: float | None = None
        self._expected = heartbeat.h_min
        self._silence_reported_at: float | None = None
        self._safety_reported: tuple[int, int] | None = None
        # Last role each primary-capable machine was seen in (I4's
        # no-demotion check), keyed by the adapter's subject name.
        self._roles: dict[str, LoggerRole] = {}
        self._promotions: list[tuple[float, str, int]] = []
        self._promoted: set[str] = set()
        # I6: the commit-point ratchet and any failover awaiting catch-up.
        # Epochs start at 1 (the configured primary's term): any
        # promotion must move strictly beyond the term it replaces.
        self._committed_high = 0
        self._committed_reported = 0
        self._last_epoch = 1
        self._pending_failover: tuple[float, int] | None = None
        self._obs_violations = obs.registry().counter("chaos.violations")

    def record(self, invariant: str, time: float, subject: str, detail: str) -> None:
        self.violations.append(
            Violation(invariant=invariant, time=time, subject=subject, detail=detail)
        )
        self._obs_violations.inc()

    # -- I2: bounded sender silence ---------------------------------------

    def on_source_tx(self, ptype: int, now: float, hb_index: int = 0) -> None:
        """One source transmission (data/heartbeat/retrans) was observed."""
        if self._last_tx is None or now > self._last_tx:
            self._last_tx = now
        if ptype == int(PacketType.DATA):
            self._expected = self._hb.h_min
        elif ptype == int(PacketType.HEARTBEAT):
            hb = self._hb
            self._expected = min(hb.h_min * hb.backoff**hb_index, hb.h_max)
        # RETRANS proves liveness but does not reset the heartbeat clock.

    def reset_silence_clock(self, now: float) -> None:
        """A crashed or paused source is entitled to silence; give it one
        fresh interval after recovery."""
        self._last_tx = now

    def check_silence(self, now: float) -> None:
        """I2: the source is never silent beyond its heartbeat promise."""
        if self._last_tx is None:
            return  # nothing sent yet; the promise starts with the stream
        silent = now - self._last_tx
        allowed = self._slack * self._expected + self._grace
        if silent > allowed:
            # One report per silence episode, not one per sweep.
            if self._silence_reported_at != self._last_tx:
                self._silence_reported_at = self._last_tx
                self.record(
                    "silence", now, "source",
                    f"silent {silent:.3f}s, allowed {allowed:.3f}s "
                    f"(expected interval {self._expected:.3f}s x slack {self._slack})",
                )

    # -- I3: log safety / completeness -------------------------------------

    def check_log_safety(self, now: float, released: int, held: int) -> None:
        """I3 (safety): released data is still held by some log."""
        if released == 0:
            return
        if released > held and self._safety_reported != (released, held):
            self._safety_reported = (released, held)
            self.record(
                "log-safety", now, "source",
                f"source released through seq {released} but the best live "
                f"log holds only {held} contiguously",
            )

    def check_log_completeness(
        self, now: float, subject: str, primary_seq: int, high: int
    ) -> None:
        """I3 (completeness): a live log ends at the sender's high-water mark."""
        if primary_seq < high:
            self.record(
                "log-completeness", now, subject,
                f"holds contiguously through {primary_seq}, "
                f"sender high-water mark is {high}",
            )

    def check_current_primary(
        self, now: float, subject: str, primary_seq: int, released: int
    ) -> None:
        """The logger the sender trusts must cover everything discarded."""
        if primary_seq < released:
            self.record(
                "log-completeness", now, subject,
                f"current primary holds through {primary_seq}, "
                f"source already released through {released}",
            )

    # -- I4: monotone promotion ---------------------------------------------

    def observe_role(self, subject: str, role: LoggerRole, now: float) -> None:
        """I4 (part): once PRIMARY, always PRIMARY."""
        last = self._roles.get(subject)
        if last is LoggerRole.PRIMARY and role is not LoggerRole.PRIMARY:
            self.record("promotion", now, subject, f"demoted from PRIMARY to {role.name}")
        self._roles[subject] = role

    def on_promotion(self, subject: str, from_seq: int, now: float, epoch: int = 0) -> None:
        """I4 (part): promotions are one-shot and sequence-monotone.

        ``epoch`` (I6, when reported) must move strictly beyond every
        term seen so far — a promotion into a term the group already
        left would resurrect a stale primary.
        """
        if subject in self._promoted:
            self.record("promotion", now, subject, "promoted to PRIMARY a second time")
        self._promoted.add(subject)
        if self._promotions:
            _, prev_name, prev_seq = self._promotions[-1]
            if from_seq < prev_seq:
                self.record(
                    "promotion", now, subject,
                    f"promoted from_seq {from_seq} after {prev_name} "
                    f"was promoted at from_seq {prev_seq}",
                )
        self._promotions.append((now, subject, from_seq))
        if epoch:
            if epoch <= self._last_epoch:
                self.record(
                    "stale-epoch", now, subject,
                    f"promoted into epoch {epoch}, but the group already "
                    f"reached epoch {self._last_epoch}",
                )
            else:
                self._last_epoch = epoch

    # -- I6: committed packets survive failover -----------------------------

    def on_commit_point(self, seq: int, now: float) -> None:
        """The commit point was observed at ``seq`` (ratchets up only)."""
        if seq > self._committed_high:
            self._committed_high = seq

    def check_committed_survival(self, now: float, subject: str, prefix: int) -> None:
        """I6 (safety): the trusted primary covers every committed packet."""
        if prefix < self._committed_high and self._committed_reported != self._committed_high:
            self._committed_reported = self._committed_high
            self.record(
                "committed-loss", now, subject,
                f"holds contiguously through {prefix}, but seq "
                f"{self._committed_high} was already committed",
            )

    def on_failover(self, now: float, high: int) -> None:
        """A failover began: the promoted primary owes prefix ``high``."""
        if self._pending_failover is None or high > self._pending_failover[1]:
            self._pending_failover = (now, high)

    def check_failover_stall(self, now: float, trusted_prefix: int) -> None:
        """I6 (liveness): post-failover catch-up completes within ~one MaxIT."""
        if self._pending_failover is None:
            return
        started, high = self._pending_failover
        if trusted_prefix >= high:
            self._pending_failover = None
            return
        allowed = self._slack * self._max_idle + self._grace
        if now - started > allowed:
            self._pending_failover = None
            self.record(
                "failover-stall", now, "source",
                f"promoted primary reached only {trusted_prefix} of {high} "
                f"{now - started:.3f}s after failover (allowed {allowed:.3f}s)",
            )

    # -- I1: eventual gap-free delivery -------------------------------------

    def check_delivery(
        self, now: float, subject: str, tracker, high: int, recovery_failures: int
    ) -> None:
        """I1: one live receiver ends gap-free with nothing abandoned."""
        if not tracker.started:
            if high:
                self.record(
                    "delivery", now, subject,
                    f"never received anything; sender reached seq {high}",
                )
            return
        # The obligation starts at the receiver's baseline: a receiver
        # whose first observation was seq k (it joined, or rejoined the
        # reachable world, mid-stream) owes itself k.. but not earlier
        # history — that is recovered at the application level (§5).
        base = tracker.first_seen
        gaps = [seq for seq in range(base, high + 1) if not tracker.has(seq)]
        if gaps:
            shown = ", ".join(str(s) for s in gaps[:8])
            more = f" (+{len(gaps) - 8} more)" if len(gaps) > 8 else ""
            self.record(
                "delivery", now, subject,
                f"missing seq {shown}{more} of {base}..{high} at end of run",
            )
        if recovery_failures:
            plural = "y" if recovery_failures == 1 else "ies"
            self.record(
                "delivery", now, subject,
                f"abandoned {recovery_failures} recover{plural}",
            )
