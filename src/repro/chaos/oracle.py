"""Runtime protocol-invariant oracle for simulated LBRM deployments.

:class:`ChaosOracle` attaches to a built
:class:`~repro.simnet.deploy.LbrmDeployment` and checks, while the
simulation runs and once more at the end, the receiver-reliability
invariants the paper's §2 argues for (DESIGN.md §7 catalogues them):

* **I1 — eventual gap-free delivery** (§2, §2.2.1): at the end of the
  run every receiver whose node is alive holds every sequence number
  from its join baseline (``tracker.first_seen``) to the sender's
  high-water mark, and never abandoned a recovery.
* **I2 — bounded sender silence** (§2.1): the gap between consecutive
  source transmissions (data, heartbeat, or retransmission) never
  exceeds a small multiple of the variable-heartbeat schedule's current
  interval — the MaxIT promise receivers size their watchdogs against.
* **I3 — log completeness** (§2.2.3): *safety*, checked continuously —
  the source never releases data beyond what a live log server holds
  contiguously; and *completeness*, checked at the end — live loggers
  hold the full stream up to the sender's high-water mark.
* **I4 — monotone promotion** (§2.2.3): a logger never leaves the
  PRIMARY role, a replica is promoted at most once, and successive
  promotions hand over at non-decreasing sequence numbers.

The judgement logic lives in the transport-agnostic
:class:`~repro.chaos.invariants.InvariantLedger`; this class is the
simulator adapter (its real-UDP twin is
:class:`~repro.chaos.live.LiveOracle`).  The oracle is read-only: it
chains (never replaces) the network observer, taps replica promotion
events, and sweeps deployment state on a periodic simulator event — a
run with the oracle attached is packet-for-packet identical to one
without.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.chaos.invariants import SOURCE_TYPES, InvariantLedger, Violation
from repro.core.events import PrimaryFailover, PromotedToPrimary
from repro.core.logger import LogServer
from repro.core.packets import PacketType
from repro.simnet.deploy import LbrmDeployment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.controller import ChaosController
    from repro.core.packets import Packet

__all__ = ["ChaosOracle", "Violation"]


class ChaosOracle:
    """Continuous invariant checking for one simulated deployment.

    Parameters
    ----------
    deployment:
        The deployment to watch.  Attach **before** running.
    silence_slack:
        I2 multiplier on the expected heartbeat interval ("a small
        multiple (2 in our implementation)", §2.1.1).
    grace:
        Additive I2 allowance for propagation delay and clock skew.
    check_interval:
        Seconds between periodic sweeps.
    require_delivery / require_full_logs:
        Gate the end-of-run I1 / I3-completeness checks — directed
        tests that *intend* an unrecoverable world (e.g. every logger
        dead, no replicas) disable the checks that world must fail.
    """

    def __init__(
        self,
        deployment: LbrmDeployment,
        controller: "ChaosController | None" = None,
        *,
        silence_slack: float = 2.0,
        grace: float = 0.25,
        check_interval: float = 0.5,
        require_delivery: bool = True,
        require_full_logs: bool = True,
    ) -> None:
        self.deployment = deployment
        self.controller = controller
        self.ledger = InvariantLedger(
            deployment.spec.config.heartbeat,
            silence_slack=silence_slack,
            grace=grace,
            max_idle_time=deployment.spec.config.receiver.max_idle_time,
        )
        self._interval = check_interval
        self._require_delivery = require_delivery
        self._require_full_logs = require_full_logs
        self._installed = False
        self._finished = False

    @property
    def violations(self) -> list[Violation]:
        return self.ledger.violations

    # -- wiring ----------------------------------------------------------

    def install(self) -> None:
        """Attach taps and start sweeping.  Call before the run starts."""
        if self._installed:
            raise RuntimeError("oracle already installed")
        self._installed = True
        dep = self.deployment
        network = dep.network
        chained = network.observer
        network.observer = self._make_observer(chained)
        now = dep.sim.now
        for machine, _node in self._primary_capable():
            self.ledger.observe_role(machine.addr_token, machine.role, now)
        for node in dep.replica_nodes:
            self._hook_promotions(node)
        if dep.source_node is not None:
            self._hook_failovers(dep.source_node)
        dep.sim.schedule(now + self._interval, self._sweep)

    def _make_observer(self, chained):
        def observe(kind: str, packet: "Packet", src: str, dst: str, now: float) -> None:
            if chained is not None:
                chained(kind, packet, src, dst, now)
            if src == "source" and int(packet.TYPE) in SOURCE_TYPES:
                hb_index = packet.hb_index if int(packet.TYPE) == int(PacketType.HEARTBEAT) else 0
                self.ledger.on_source_tx(int(packet.TYPE), now, hb_index=hb_index)

        return observe

    def _hook_promotions(self, node) -> None:
        chained = node._on_event
        name = node.name

        def on_event(event, now: float) -> None:
            if isinstance(event, PromotedToPrimary):
                self._on_promotion(name, event.from_seq, now, event.log_epoch)
            if chained is not None:
                chained(event, now)

        node._on_event = on_event

    def _hook_failovers(self, node) -> None:
        chained = node._on_event

        def on_event(event, now: float) -> None:
            if isinstance(event, PrimaryFailover):
                self.ledger.on_failover(now, event.high_seq)
            if chained is not None:
                chained(event, now)

        node._on_event = on_event

    def _on_promotion(self, node_name: str, from_seq: int, now: float, epoch: int = 0) -> None:
        self.ledger.on_promotion(node_name, from_seq, now, epoch=epoch)

    # -- periodic sweep ----------------------------------------------------

    def _sweep(self) -> None:
        if self._finished:
            return
        now = self.deployment.sim.now
        self._check_silence(now)
        self._check_log_safety(now)
        self._check_roles(now)
        self._check_commit_point(now)
        self.deployment.sim.schedule(now + self._interval, self._sweep)

    def finish(self) -> list[Violation]:
        """Run the end-of-stream checks and stop sweeping."""
        self._finished = True
        now = self.deployment.sim.now
        self._check_silence(now)
        self._check_log_safety(now)
        self._check_roles(now)
        self._check_commit_point(now)
        if self._require_delivery:
            self._check_delivery(now)
        if self._require_full_logs:
            self._check_log_completeness(now)
        return list(self.violations)

    def assert_ok(self) -> None:
        """``finish()`` and raise AssertionError on any violation."""
        violations = self.finish()
        if violations:
            lines = "\n".join(
                f"  [{v.invariant}] t={v.time:.3f} {v.subject}: {v.detail}" for v in violations
            )
            raise AssertionError(f"{len(violations)} invariant violation(s):\n{lines}")

    # -- deployment state sweeps -------------------------------------------

    def _check_silence(self, now: float) -> None:
        source_node = self.deployment.source_node
        if source_node is None or not source_node.alive:
            self.ledger.reset_silence_clock(now)
            return
        self.ledger.check_silence(now)

    def _primary_capable(self) -> list[tuple[LogServer, object]]:
        dep = self.deployment
        pairs: list[tuple[LogServer, object]] = []
        if dep.primary is not None and dep.primary_node is not None:
            pairs.append((dep.primary, dep.primary_node))
        pairs.extend(zip(dep.replicas, dep.replica_nodes))
        return pairs

    def _check_log_safety(self, now: float) -> None:
        """Logs are durable in the paper's model (loggers spool to disk,
        §2.2.3 replicas protect against *total* loss), so a crashed or
        paused node's log still counts — what must never happen is the
        source discarding data that no log, live or recoverable, holds.
        """
        sender = self.deployment.sender
        if sender is None:
            return
        held = 0
        for machine, _node in self._primary_capable():
            held = max(held, machine.primary_seq)
        self.ledger.check_log_safety(now, sender.released_up_to, held)

    def _check_roles(self, now: float) -> None:
        for machine, _node in self._primary_capable():
            self.ledger.observe_role(machine.addr_token, machine.role, now)

    def _trusted_primary(self) -> LogServer | None:
        """The log machine the sender currently trusts (changes at failover)."""
        sender = self.deployment.sender
        if sender is None:
            return None
        current = sender.primary
        for machine, _node in self._primary_capable():
            if machine.addr_token == current:
                return machine
        return None

    def _check_commit_point(self, now: float) -> None:
        """I6: ratchet the observed commit point and hold the trusted
        primary to it.  Logs are durable (§2.2.3), so a crashed machine's
        prefix still counts — what must never happen is the group
        electing a primary whose log misses a committed packet."""
        sender = self.deployment.sender
        if sender is None:
            return
        self.ledger.on_commit_point(sender.released_up_to, now)
        trusted = self._trusted_primary()
        if trusted is None:
            return
        replication = trusted.replication
        if replication is not None and replication.members:
            self.ledger.on_commit_point(replication.commit_seq, now)
        self.ledger.check_committed_survival(now, trusted.addr_token, trusted.primary_seq)
        self.ledger.check_failover_stall(now, trusted.primary_seq)

    def _check_delivery(self, now: float) -> None:
        dep = self.deployment
        high = dep.sender.seq if dep.sender is not None else 0
        for receiver, node in zip(dep.receivers, dep.receiver_nodes):
            if not node.alive:
                continue  # receiver-reliability binds only live receivers
            self.ledger.check_delivery(
                now, node.name, receiver.tracker, high, receiver.stats["recovery_failures"]
            )

    def _check_log_completeness(self, now: float) -> None:
        dep = self.deployment
        sender = dep.sender
        if sender is None or sender.seq == 0:
            return
        high = sender.seq
        loggers = list(zip(dep.site_loggers, dep.site_logger_nodes))
        loggers.extend(zip(dep.regional_loggers, dep.regional_logger_nodes))
        loggers.extend(zip(dep.interior_loggers, dep.interior_logger_nodes))
        for machine, node in loggers:
            if not node.alive:
                continue
            self.ledger.check_log_completeness(now, node.name, machine.primary_seq, high)
        # The logger the sender currently trusts must cover everything
        # the source has discarded (else that data is gone for good).
        current = sender.primary
        for machine, node in self._primary_capable():
            if machine.addr_token != current:
                continue
            if node.alive:
                self.ledger.check_current_primary(
                    now, machine.addr_token, machine.primary_seq, sender.released_up_to
                )
