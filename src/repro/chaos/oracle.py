"""Runtime protocol-invariant oracle for LBRM deployments.

:class:`ChaosOracle` attaches to a built
:class:`~repro.simnet.deploy.LbrmDeployment` and checks, while the
simulation runs and once more at the end, the receiver-reliability
invariants the paper's §2 argues for (DESIGN.md §7 catalogues them):

* **I1 — eventual gap-free delivery** (§2, §2.2.1): at the end of the
  run every receiver whose node is alive holds every sequence number
  from its join baseline (``tracker.first_seen``) to the sender's
  high-water mark, and never abandoned a recovery.
* **I2 — bounded sender silence** (§2.1): the gap between consecutive
  source transmissions (data, heartbeat, or retransmission) never
  exceeds a small multiple of the variable-heartbeat schedule's current
  interval — the MaxIT promise receivers size their watchdogs against.
* **I3 — log completeness** (§2.2.3): *safety*, checked continuously —
  the source never releases data beyond what a live log server holds
  contiguously; and *completeness*, checked at the end — live loggers
  hold the full stream up to the sender's high-water mark.
* **I4 — monotone promotion** (§2.2.3): a logger never leaves the
  PRIMARY role, a replica is promoted at most once, and successive
  promotions hand over at non-decreasing sequence numbers.

The oracle is read-only: it chains (never replaces) the network
observer, taps replica promotion events, and sweeps deployment state on
a periodic simulator event — a run with the oracle attached is
packet-for-packet identical to one without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs
from repro.core.events import PromotedToPrimary
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import PacketType
from repro.simnet.deploy import LbrmDeployment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.controller import ChaosController
    from repro.core.packets import Packet

__all__ = ["ChaosOracle", "Violation"]

_SOURCE_TYPES = frozenset({int(PacketType.DATA), int(PacketType.HEARTBEAT), int(PacketType.RETRANS)})


@dataclass(frozen=True, slots=True)
class Violation:
    """One observed invariant breach."""

    invariant: str  # "delivery" | "silence" | "log-safety" | "log-completeness" | "promotion"
    time: float
    subject: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "subject": self.subject,
            "detail": self.detail,
        }


class ChaosOracle:
    """Continuous invariant checking for one deployment.

    Parameters
    ----------
    deployment:
        The deployment to watch.  Attach **before** running.
    silence_slack:
        I2 multiplier on the expected heartbeat interval ("a small
        multiple (2 in our implementation)", §2.1.1).
    grace:
        Additive I2 allowance for propagation delay and clock skew.
    check_interval:
        Seconds between periodic sweeps.
    require_delivery / require_full_logs:
        Gate the end-of-run I1 / I3-completeness checks — directed
        tests that *intend* an unrecoverable world (e.g. every logger
        dead, no replicas) disable the checks that world must fail.
    """

    def __init__(
        self,
        deployment: LbrmDeployment,
        controller: "ChaosController | None" = None,
        *,
        silence_slack: float = 2.0,
        grace: float = 0.25,
        check_interval: float = 0.5,
        require_delivery: bool = True,
        require_full_logs: bool = True,
    ) -> None:
        self.deployment = deployment
        self.controller = controller
        self.violations: list[Violation] = []
        self._slack = silence_slack
        self._grace = grace
        self._interval = check_interval
        self._require_delivery = require_delivery
        self._require_full_logs = require_full_logs
        self._installed = False
        self._finished = False
        hb = deployment.spec.config.heartbeat
        self._hb = hb
        self._last_tx: float | None = None
        self._expected = hb.h_min
        self._silence_reported_at: float | None = None
        self._safety_reported: tuple[int, int] | None = None
        # Machines that may ever hold the PRIMARY role, with the last
        # role each was seen in (I4's no-demotion check).
        self._roles: dict[int, tuple[str, LoggerRole]] = {}
        self._promotions: list[tuple[float, str, int]] = []
        self._promoted_nodes: set[str] = set()
        self._obs_violations = obs.registry().counter("chaos.violations")

    # -- wiring ----------------------------------------------------------

    def install(self) -> None:
        """Attach taps and start sweeping.  Call before the run starts."""
        if self._installed:
            raise RuntimeError("oracle already installed")
        self._installed = True
        dep = self.deployment
        network = dep.network
        chained = network.observer
        network.observer = self._make_observer(chained)
        for machine, _node in self._primary_capable():
            self._roles[id(machine)] = (machine.addr_token, machine.role)
        for node in dep.replica_nodes:
            self._hook_promotions(node)
        dep.sim.schedule(dep.sim.now + self._interval, self._sweep)

    def _make_observer(self, chained):
        def observe(kind: str, packet: "Packet", src: str, dst: str, now: float) -> None:
            if chained is not None:
                chained(kind, packet, src, dst, now)
            if src == "source" and int(packet.TYPE) in _SOURCE_TYPES:
                self._on_source_tx(packet, now)

        return observe

    def _on_source_tx(self, packet: "Packet", now: float) -> None:
        if self._last_tx is None or now > self._last_tx:
            self._last_tx = now
        ptype = int(packet.TYPE)
        if ptype == int(PacketType.DATA):
            self._expected = self._hb.h_min
        elif ptype == int(PacketType.HEARTBEAT):
            hb = self._hb
            self._expected = min(hb.h_min * hb.backoff ** packet.hb_index, hb.h_max)
        # RETRANS proves liveness but does not reset the heartbeat clock.

    def _hook_promotions(self, node) -> None:
        chained = node._on_event
        name = node.name

        def on_event(event, now: float) -> None:
            if isinstance(event, PromotedToPrimary):
                self._on_promotion(name, event.from_seq, now)
            if chained is not None:
                chained(event, now)

        node._on_event = on_event

    # -- periodic sweep ----------------------------------------------------

    def _sweep(self) -> None:
        if self._finished:
            return
        now = self.deployment.sim.now
        self._check_silence(now)
        self._check_log_safety(now)
        self._check_roles(now)
        self.deployment.sim.schedule(now + self._interval, self._sweep)

    def finish(self) -> list[Violation]:
        """Run the end-of-stream checks and stop sweeping."""
        self._finished = True
        now = self.deployment.sim.now
        self._check_silence(now)
        self._check_log_safety(now)
        self._check_roles(now)
        if self._require_delivery:
            self._check_delivery(now)
        if self._require_full_logs:
            self._check_log_completeness(now)
        return list(self.violations)

    def assert_ok(self) -> None:
        """``finish()`` and raise AssertionError on any violation."""
        violations = self.finish()
        if violations:
            lines = "\n".join(
                f"  [{v.invariant}] t={v.time:.3f} {v.subject}: {v.detail}" for v in violations
            )
            raise AssertionError(f"{len(violations)} invariant violation(s):\n{lines}")

    # -- invariants ----------------------------------------------------------

    def _record(self, invariant: str, time: float, subject: str, detail: str) -> None:
        self.violations.append(Violation(invariant=invariant, time=time, subject=subject, detail=detail))
        self._obs_violations.inc()

    def _check_silence(self, now: float) -> None:
        """I2: the source is never silent beyond its heartbeat promise."""
        source_node = self.deployment.source_node
        if source_node is None or not source_node.alive:
            # A crashed or paused source is entitled to silence; restart
            # the clock so it gets one fresh interval after recovery.
            self._last_tx = now
            return
        if self._last_tx is None:
            return  # nothing sent yet; the promise starts with the stream
        silent = now - self._last_tx
        allowed = self._slack * self._expected + self._grace
        if silent > allowed:
            # One report per silence episode, not one per sweep.
            if self._silence_reported_at != self._last_tx:
                self._silence_reported_at = self._last_tx
                self._record(
                    "silence", now, "source",
                    f"silent {silent:.3f}s, allowed {allowed:.3f}s "
                    f"(expected interval {self._expected:.3f}s x slack {self._slack})",
                )

    def _primary_capable(self) -> list[tuple[LogServer, object]]:
        dep = self.deployment
        pairs: list[tuple[LogServer, object]] = []
        if dep.primary is not None and dep.primary_node is not None:
            pairs.append((dep.primary, dep.primary_node))
        pairs.extend(zip(dep.replicas, dep.replica_nodes))
        return pairs

    def _check_log_safety(self, now: float) -> None:
        """I3 (safety): released data is still held by some log.

        Logs are durable in the paper's model (loggers spool to disk,
        §2.2.3 replicas protect against *total* loss), so a crashed or
        paused node's log still counts — what must never happen is the
        source discarding data that no log, live or recoverable, holds.
        """
        sender = self.deployment.sender
        if sender is None:
            return
        released = sender.released_up_to
        if released == 0:
            return
        held = 0
        for machine, _node in self._primary_capable():
            held = max(held, machine.primary_seq)
        if released > held and self._safety_reported != (released, held):
            self._safety_reported = (released, held)
            self._record(
                "log-safety", now, "source",
                f"source released through seq {released} but the best live "
                f"log holds only {held} contiguously",
            )

    def _check_roles(self, now: float) -> None:
        """I4 (part): once PRIMARY, always PRIMARY."""
        for machine, _node in self._primary_capable():
            name, last = self._roles[id(machine)]
            current = machine.role
            if last is LoggerRole.PRIMARY and current is not LoggerRole.PRIMARY:
                self._record(
                    "promotion", now, name,
                    f"demoted from PRIMARY to {current.name}",
                )
            self._roles[id(machine)] = (name, current)

    def _on_promotion(self, node_name: str, from_seq: int, now: float) -> None:
        """I4 (part): promotions are one-shot and sequence-monotone."""
        if node_name in self._promoted_nodes:
            self._record("promotion", now, node_name, "promoted to PRIMARY a second time")
        self._promoted_nodes.add(node_name)
        if self._promotions:
            _, prev_name, prev_seq = self._promotions[-1]
            if from_seq < prev_seq:
                self._record(
                    "promotion", now, node_name,
                    f"promoted from_seq {from_seq} after {prev_name} "
                    f"was promoted at from_seq {prev_seq}",
                )
        self._promotions.append((now, node_name, from_seq))

    def _check_delivery(self, now: float) -> None:
        """I1: every live receiver ends gap-free with nothing abandoned."""
        dep = self.deployment
        high = dep.sender.seq if dep.sender is not None else 0
        for receiver, node in zip(dep.receivers, dep.receiver_nodes):
            if not node.alive:
                continue  # receiver-reliability binds only live receivers
            tracker = receiver.tracker
            if not tracker.started:
                if high:
                    self._record(
                        "delivery", now, node.name,
                        f"never received anything; sender reached seq {high}",
                    )
                continue
            # The obligation starts at the receiver's baseline: a receiver
            # whose first observation was seq k (it joined, or rejoined the
            # reachable world, mid-stream) owes itself k.. but not earlier
            # history — that is recovered at the application level (§5).
            base = tracker.first_seen
            gaps = [seq for seq in range(base, high + 1) if not tracker.has(seq)]
            if gaps:
                shown = ", ".join(str(s) for s in gaps[:8])
                more = f" (+{len(gaps) - 8} more)" if len(gaps) > 8 else ""
                self._record(
                    "delivery", now, node.name,
                    f"missing seq {shown}{more} of {base}..{high} at end of run",
                )
            failures = receiver.stats["recovery_failures"]
            if failures:
                self._record(
                    "delivery", now, node.name,
                    f"abandoned {failures} recover{'y' if failures == 1 else 'ies'}",
                )

    def _check_log_completeness(self, now: float) -> None:
        """I3 (completeness): live logs end at the sender's high-water mark."""
        dep = self.deployment
        sender = dep.sender
        if sender is None or sender.seq == 0:
            return
        high = sender.seq
        loggers = list(zip(dep.site_loggers, dep.site_logger_nodes))
        loggers.extend(zip(dep.regional_loggers, dep.regional_logger_nodes))
        for machine, node in loggers:
            if not node.alive:
                continue
            if machine.primary_seq < high:
                self._record(
                    "log-completeness", now, node.name,
                    f"holds contiguously through {machine.primary_seq}, "
                    f"sender high-water mark is {high}",
                )
        # The logger the sender currently trusts must cover everything
        # the source has discarded (else that data is gone for good).
        current = sender.primary
        for machine, node in self._primary_capable():
            if machine.addr_token != current:
                continue
            if node.alive and machine.primary_seq < sender.released_up_to:
                self._record(
                    "log-completeness", now, machine.addr_token,
                    f"current primary holds through {machine.primary_seq}, "
                    f"source already released through {sender.released_up_to}",
                )
