"""The randomized chaos conformance campaign behind ``repro chaos``.

A campaign samples fault schedules from a seed, runs each one against a
small LBRM deployment under **both** simulation engines (the timer-wheel
``Simulator`` and the pure-heap ``ReferenceSimulator``), checks the
:class:`~repro.chaos.oracle.ChaosOracle` invariants throughout, and
cross-checks that the two engines produced bit-identical end states.
On any violation it prints a reproducer seed and a greedily *minimized*
schedule — the smallest fault subset that still breaks the invariant.

Everything is derived from the campaign seed: schedules, deployment
RNG streams, and packet-chaos draws.  Reports contain no wallclock
timestamps, so the same seed yields a byte-identical report — which CI
asserts by running the campaign twice and diffing.

Recoverable by construction
---------------------------

The sampler only emits schedules the protocol is *supposed* to survive:
the source is never killed, at most one primary-side component is
disturbed at a time (and a permanent primary crash only when replicas
exist to fail over to), partitions and blips are short enough to fit
inside the (deliberately generous) retry budgets of the campaign
config, and corruption targets receivers — the parties the paper makes
responsible for their own reliability.  Any invariant violation under
such a schedule is therefore a protocol bug, not an impossible ask.

A *sabotage* deliberately breaks the build (e.g. secondary loggers drop
every NACK) to prove the oracle catches real regressions.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.controller import ChaosController
from repro.chaos.oracle import ChaosOracle, Violation
from repro.chaos.schedule import Fault, FaultSchedule
from repro.core.config import LbrmConfig, LoggerConfig, ReceiverConfig
from repro.core.logger import LogServer
from repro.simnet.deploy import DeploymentSpec, LbrmDeployment
from repro.simnet.engine import ReferenceSimulator, Simulator

__all__ = [
    "CampaignShape",
    "TIERS",
    "SABOTAGES",
    "sample_schedule",
    "run_case",
    "minimize_schedule",
    "run_campaign",
    "build_chaos_parser",
    "run_chaos",
]

# Timeline of every case: quiet warm-up, an active window carrying both
# the data stream and the faults, then a long drain for recovery (the
# receiver escalation ladder alone can take ~12 s at campaign retry
# budgets, and post-stream heartbeats back off toward h_max).
WARMUP = 0.5
ACTIVE_END = 8.5
DRAIN = 25.0

# Retry budgets are raised well past every fault duration the sampler
# can emit, so "ran out of retries" never masquerades as a protocol bug.
_CAMPAIGN_CONFIG = LbrmConfig(
    receiver=ReceiverConfig(max_nack_retries=10),
    logger=LoggerConfig(max_upstream_retries=30),
)


@dataclass(frozen=True)
class CampaignShape:
    """Deployment dimensions and workload for one campaign tier."""

    runs: int
    n_sites: int
    receivers_per_site: int
    n_replicas: int
    packets: int


TIERS: dict[str, CampaignShape] = {
    "quick": CampaignShape(runs=3, n_sites=2, receivers_per_site=2, n_replicas=1, packets=10),
    "full": CampaignShape(runs=8, n_sites=3, receivers_per_site=3, n_replicas=2, packets=14),
}

SABOTAGES: dict[str, str] = {
    "logger-retrans": "logging servers drop every NACK (retransmission service disabled)",
}


@contextmanager
def _sabotaged(name: str | None):
    if name is None:
        yield
        return
    if name not in SABOTAGES:
        raise ValueError(f"unknown sabotage {name!r} (one of {sorted(SABOTAGES)})")
    original = LogServer._on_nack
    LogServer._on_nack = lambda self, packet, src, now: []
    try:
        yield
    finally:
        LogServer._on_nack = original


# -- schedule sampling ----------------------------------------------------


def sample_schedule(rng: random.Random, shape: CampaignShape) -> FaultSchedule:
    """Draw one recoverable-by-construction fault schedule."""
    sites = [f"site{i}" for i in range(1, shape.n_sites + 1)]
    receivers = [
        f"site{i}-rx{j}"
        for i in range(1, shape.n_sites + 1)
        for j in range(shape.receivers_per_site)
    ]
    loggers = [f"site{i}-logger" for i in range(1, shape.n_sites + 1)]
    faults: list[Fault] = []

    def at(lo: float = 0.8, hi: float = 7.8) -> float:
        return round(rng.uniform(lo, hi), 3)

    def dur(lo: float, hi: float) -> float:
        return round(rng.uniform(lo, hi), 3)

    if shape.n_replicas >= 1 and rng.random() < 0.25:
        # Failover scenario: kill the primary for good mid-stream; the
        # sender must locate and promote the best replica (§2.2.3).
        # Only gentle receiver-side extras ride along so the secondary
        # loggers keep seeing the multicast stream directly.
        faults.append(Fault("crash", at(1.0, 4.0), "primary"))
        for _ in range(rng.randrange(0, 3)):
            faults.extend(_receiver_blip(rng, receivers, at, dur))
        return FaultSchedule(faults=tuple(faults), seed=rng.randrange(2**32))

    menu = [
        "rx-blip", "rx-blip", "rx-pause", "logger-blip", "logger-blip",
        "partition", "partition", "skew", "duplicate", "corrupt", "reorder",
        "primary-pause",
    ]
    primary_budget = 1  # at most one primary-side disturbance per schedule
    for _ in range(rng.randrange(2, 6)):
        pick = rng.choice(menu)
        if pick == "rx-blip":
            faults.extend(_receiver_blip(rng, receivers, at, dur))
        elif pick == "rx-pause":
            start = at()
            faults.append(Fault("pause", start, rng.choice(receivers)))
            faults.append(Fault("resume", round(start + dur(0.3, 2.0), 3), faults[-1].target))
        elif pick == "logger-blip":
            start = at()
            victim = rng.choice(loggers)
            faults.append(Fault("crash", start, victim))
            faults.append(Fault("restart", round(start + dur(0.3, 2.0), 3), victim))
        elif pick == "partition":
            faults.append(Fault("partition", at(), rng.choice(sites), duration=dur(0.5, 2.5)))
        elif pick == "skew":
            amount = round(rng.uniform(0.02, 0.1) * rng.choice((-1, 1)), 3)
            faults.append(Fault("skew", at(), rng.choice(receivers + loggers), amount=amount))
        elif pick == "duplicate":
            target = rng.choice([""] + receivers)
            faults.append(
                Fault("duplicate", at(), target, duration=dur(0.5, 2.0),
                      amount=round(rng.uniform(0.3, 0.8), 3))
            )
        elif pick == "corrupt":
            # Corruption (checksum-discard) aims at receivers only: the
            # paper holds receivers responsible for their own recovery,
            # and scoping keeps the primary's control channel clean.
            faults.append(
                Fault("corrupt", at(), rng.choice(receivers), duration=dur(0.3, 1.5),
                      amount=round(rng.uniform(0.05, 0.25), 3))
            )
        elif pick == "reorder":
            faults.append(
                Fault("reorder", at(), rng.choice(receivers), duration=dur(0.3, 1.5),
                      amount=round(rng.uniform(0.02, 0.15), 3))
            )
        elif pick == "primary-pause" and primary_budget:
            primary_budget = 0
            start = at(1.0, 6.0)
            faults.append(Fault("pause", start, "primary"))
            faults.append(Fault("resume", round(start + dur(0.3, 1.4), 3), "primary"))
    if not faults:  # pragma: no cover - menu always yields something
        faults.extend(_receiver_blip(rng, receivers, at, dur))
    return FaultSchedule(faults=tuple(faults), seed=rng.randrange(2**32))


def _receiver_blip(rng: random.Random, receivers: list[str], at, dur) -> list[Fault]:
    start = at()
    victim = rng.choice(receivers)
    return [
        Fault("crash", start, victim),
        Fault("restart", round(start + dur(0.3, 2.0), 3), victim),
    ]


# -- single case ----------------------------------------------------------


@dataclass
class CaseOutcome:
    violations: list[Violation]
    faults_injected: int
    digest: str


def run_case(
    shape: CampaignShape,
    schedule: FaultSchedule,
    case_seed: int,
    engine: str = "fast",
    sabotage: str | None = None,
) -> CaseOutcome:
    """Run one schedule against one deployment under one engine."""
    sim = Simulator() if engine == "fast" else ReferenceSimulator()
    spec = DeploymentSpec(
        n_sites=shape.n_sites,
        receivers_per_site=shape.receivers_per_site,
        n_replicas=shape.n_replicas,
        config=_CAMPAIGN_CONFIG,
        seed=case_seed,
    )
    with _sabotaged(sabotage):
        dep = LbrmDeployment(spec, sim=sim)
        controller = ChaosController(dep, schedule)
        controller.install()
        oracle = ChaosOracle(dep, controller)
        oracle.install()
        dep.start()
        span = ACTIVE_END - WARMUP
        for i in range(shape.packets):
            send_at = WARMUP + (i + 0.5) * span / shape.packets
            dep.advance(send_at - dep.sim.now)
            dep.send(f"chaos-{i}".encode())
        dep.advance(ACTIVE_END - dep.sim.now + DRAIN)
        violations = oracle.finish()
    return CaseOutcome(
        violations=violations,
        faults_injected=controller.faults_injected,
        digest=_digest(dep),
    )


def _digest(dep: LbrmDeployment) -> str:
    """Fingerprint of the end state, for cross-engine agreement checks."""
    assert dep.sender is not None
    state = {
        "seq": dep.sender.seq,
        "released": dep.sender.released_up_to,
        "primary": str(dep.sender.primary),
        "network": dep.network.stats,
        "receivers": {
            node.name: [s for s in range(1, dep.sender.seq + 1) if rx.tracker.has(s)]
            for rx, node in zip(dep.receivers, dep.receiver_nodes)
        },
    }
    return hashlib.sha256(json.dumps(state, sort_keys=True).encode()).hexdigest()[:16]


def minimize_schedule(
    shape: CampaignShape,
    schedule: FaultSchedule,
    case_seed: int,
    engine: str = "fast",
    sabotage: str | None = None,
) -> FaultSchedule:
    """Greedily drop faults while the violation persists (ddmin-lite)."""

    def violates(candidate: FaultSchedule) -> bool:
        return bool(run_case(shape, candidate, case_seed, engine, sabotage).violations)

    current = schedule
    index = len(current.faults) - 1
    while index >= 0:
        candidate = current.without(index)
        if violates(candidate):
            current = candidate
        index -= 1
    return current


# -- the campaign ----------------------------------------------------------


def _case_seed(campaign_seed: int, index: int) -> int:
    digest = hashlib.sha256(f"chaos:{campaign_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def run_campaign(
    seed: int,
    tier: str = "quick",
    engines: tuple[str, ...] = ("fast", "reference"),
    sabotage: str | None = None,
    runs: int | None = None,
) -> dict:
    """Run the campaign; returns the (JSON-stable) report dict."""
    shape = TIERS[tier]
    n_runs = runs if runs is not None else shape.runs
    cases = []
    failures = []
    total_faults = 0
    total_violations = 0
    for index in range(n_runs):
        case_seed = _case_seed(seed, index)
        schedule = sample_schedule(random.Random(f"chaos-campaign:{seed}:{index}"), shape)
        per_engine = {}
        for engine in engines:
            outcome = run_case(shape, schedule, case_seed, engine, sabotage)
            per_engine[engine] = {
                "digest": outcome.digest,
                "faults_injected": outcome.faults_injected,
                "violations": [v.to_dict() for v in outcome.violations],
            }
            total_faults += outcome.faults_injected
            total_violations += len(outcome.violations)
        engines_agree = len({e["digest"] for e in per_engine.values()}) == 1
        case = {
            "index": index,
            "case_seed": case_seed,
            "schedule": schedule.to_dict(),
            "engines": per_engine,
            "engines_agree": engines_agree,
        }
        cases.append(case)
        violated = any(e["violations"] for e in per_engine.values())
        if violated or not engines_agree:
            minimized = minimize_schedule(shape, schedule, case_seed, engines[0], sabotage)
            failures.append({
                "index": index,
                "case_seed": case_seed,
                "reproducer": f"repro chaos --{tier} --seed {seed} --runs {n_runs}",
                "minimized_schedule": minimized.to_dict(),
            })
    return {
        "campaign": {
            "seed": seed,
            "tier": tier,
            "runs": n_runs,
            "engines": list(engines),
            "sabotage": sabotage,
            "shape": {
                "n_sites": shape.n_sites,
                "receivers_per_site": shape.receivers_per_site,
                "n_replicas": shape.n_replicas,
                "packets": shape.packets,
            },
        },
        "cases": cases,
        "failures": failures,
        "totals": {"faults_injected": total_faults, "violations": total_violations},
    }


# -- CLI ----------------------------------------------------------


def build_chaos_parser(parser: argparse.ArgumentParser) -> None:
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--quick", action="store_const", const="quick", dest="tier",
                      help="small campaign (default): 3 cases, 2 sites")
    tier.add_argument("--full", action="store_const", const="full", dest="tier",
                      help="larger campaign: 8 cases, 3 sites, 2 replicas")
    parser.set_defaults(tier="quick")
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    parser.add_argument("--runs", type=int, default=None, help="override the tier's case count")
    parser.add_argument("--engine", choices=("both", "fast", "reference"), default="both",
                        help="simulation engine(s) to run each case under (default both)")
    parser.add_argument("--sabotage", choices=sorted(SABOTAGES), default=None,
                        help="deliberately break the protocol to demo oracle detection")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write CHAOS_seed<seed>.json into DIR")
    parser.add_argument("--json", action="store_true", help="print the full report as JSON")


def run_chaos(args: argparse.Namespace) -> int:
    engines = ("fast", "reference") if args.engine == "both" else (args.engine,)
    report = run_campaign(
        args.seed, tier=args.tier, engines=engines, sabotage=args.sabotage, runs=args.runs
    )
    text = json.dumps(report, sort_keys=True, indent=2)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"CHAOS_seed{args.seed}.json").write_text(text + "\n")
    if args.json:
        print(text)
    else:
        meta = report["campaign"]
        print(
            f"chaos campaign: seed={meta['seed']} tier={meta['tier']} "
            f"cases={meta['runs']} engines={','.join(meta['engines'])}"
            + (f" sabotage={meta['sabotage']}" if meta["sabotage"] else "")
        )
        for case in report["cases"]:
            n_violations = sum(len(e["violations"]) for e in case["engines"].values())
            print(
                f"  case {case['index']}: seed={case['case_seed']} "
                f"faults={len(case['schedule']['faults'])} "
                f"violations={n_violations} "
                f"engines_agree={'yes' if case['engines_agree'] else 'NO'}"
            )
        totals = report["totals"]
        print(f"totals: faults_injected={totals['faults_injected']} "
              f"violations={totals['violations']}")
        for failure in report["failures"]:
            print(f"FAILURE in case {failure['index']} (case_seed {failure['case_seed']})")
            print(f"  reproducer: {failure['reproducer']}")
            print(f"  minimized schedule: {json.dumps(failure['minimized_schedule'], sort_keys=True)}")
    return 1 if report["failures"] else 0
