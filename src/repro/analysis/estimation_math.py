"""Group-size estimation accuracy (Table 2) and loss-detection bounds
(§2.1.1), in closed form.

Table 2: with N secondary loggers each replying to a probe independently
with probability p, the estimator ``replies / p`` has standard deviation
``σ₁ = √(N(1-p)/p)``; averaging n probes divides by √n.  (These wrap the
functions in :mod:`repro.core.estimator` so the analysis namespace is
complete.)

§2.1.1: with the variable heartbeat, an isolated loss is detected within
``h_min`` and a burst of duration ``t_burst`` within
``min(backoff · t_burst, h_max)`` of the data packet that opened it.
"""

from __future__ import annotations

import math

from repro.core.config import HeartbeatConfig
from repro.core.estimator import nsl_stddev, nsl_stddev_after_probes

__all__ = [
    "nsl_stddev",
    "nsl_stddev_after_probes",
    "table2_rows",
    "loss_detection_bound",
    "worst_case_detection_time",
]


def table2_rows(probes: tuple[int, ...] = (1, 2, 3, 4, 5)) -> list[tuple[int, float]]:
    """(probe count, σ/σ₁) rows of Table 2 — 1, 0.707, 0.577, 0.5, 0.447."""
    return [(n, 1.0 / math.sqrt(n)) for n in probes]


def loss_detection_bound(t_burst: float, config: HeartbeatConfig | None = None) -> float:
    """§2.1.1's analytic bound on loss-detection delay after a burst.

    Measured from the lost data packet's transmission: "a heartbeat will
    arrive no longer than t_burst after the network returns to normal"
    (the inter-heartbeat gap at elapsed time t is at most (k-1)·t for
    backoff k, and the h_max cap bounds it absolutely), so the total is
    ``t_burst + min((backoff-1)·t_burst, h_max)`` — the paper's
    "2 × t_burst (or h_max, whichever is smaller)" with the cap applying
    to the post-burst tail.  Isolated losses (t_burst ≤ h_min) are found
    by the first heartbeat at h_min.
    """
    cfg = config or HeartbeatConfig()
    if t_burst < 0:
        raise ValueError(f"t_burst must be non-negative, got {t_burst}")
    if t_burst <= cfg.h_min:
        return cfg.h_min
    return t_burst + min((cfg.backoff - 1.0) * t_burst, cfg.h_max)


def worst_case_detection_time(t_burst: float, config: HeartbeatConfig | None = None) -> float:
    """Exact worst-case detection delay for a burst starting at a data packet.

    The first heartbeat transmitted at or after the burst's end is the
    one that reveals the loss: beats go out at cumulative offsets
    ``h_min, h_min(1+b), …`` (capped per-interval at ``h_max``), so the
    exact delay is the first such offset ≥ ``t_burst``.  Always ≤ the
    analytic bound of :func:`loss_detection_bound` plus ``h_max`` in the
    deep-idle corner the paper's bound also concedes.
    """
    cfg = config or HeartbeatConfig()
    if t_burst < 0:
        raise ValueError(f"t_burst must be non-negative, got {t_burst}")
    h = cfg.h_min
    t = h
    while t < t_burst:
        h = min(h * cfg.backoff, cfg.h_max)
        t += h
    return t
