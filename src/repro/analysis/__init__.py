"""Closed-form analysis and reporting for the paper's figures and tables."""

from repro.analysis.bandwidth import GroupBandwidth, MessageSizes, group_bandwidth
from repro.analysis.estimation_math import (
    loss_detection_bound,
    nsl_stddev,
    nsl_stddev_after_probes,
    table2_rows,
    worst_case_detection_time,
)
from repro.analysis.heartbeat_math import (
    fixed_heartbeat_count,
    fixed_rate,
    overhead_ratio,
    table1_rows,
    variable_heartbeat_count,
    variable_rate,
)
from repro.analysis.metrics_report import render_json, render_text, snapshot_with_trace
from repro.analysis.report import format_comparison, format_series, format_table

__all__ = [
    "GroupBandwidth",
    "MessageSizes",
    "group_bandwidth",
    "loss_detection_bound",
    "nsl_stddev",
    "nsl_stddev_after_probes",
    "table2_rows",
    "worst_case_detection_time",
    "fixed_heartbeat_count",
    "fixed_rate",
    "overhead_ratio",
    "table1_rows",
    "variable_heartbeat_count",
    "variable_rate",
    "format_comparison",
    "format_series",
    "format_table",
    "render_json",
    "render_text",
    "snapshot_with_trace",
]
