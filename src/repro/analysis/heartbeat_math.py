"""Closed-form heartbeat overhead analysis (Figures 4 & 5, Table 1).

For a periodic data stream with inter-packet interval ``dt``:

* the **fixed** scheme emits a heartbeat every ``h_min`` while idle, so
  ``floor(dt / h_min)`` beats sit strictly inside each interval (a beat
  landing exactly on the next data time is preempted);
* the **variable** scheme emits beats at cumulative offsets
  ``h_min, h_min(1+b), h_min(1+b+b²), …`` with each interval capped at
  ``h_max`` — counted exactly by :func:`variable_heartbeat_count`.

Rates are counts divided by ``dt``.  As ``dt`` grows, the variable rate
approaches ``1/h_max`` while the fixed rate stays at ``1/h_min`` — the
two asymptotes in Figure 4.  At the paper's DIS operating point
(``dt = 120`` s, backoff 2) the ratio is 480/9 = **53.3**, the Figure 5
marked point and the Table 1 backoff-2 row.
"""

from __future__ import annotations

import math

from repro.core.config import HeartbeatConfig

__all__ = [
    "fixed_heartbeat_count",
    "variable_heartbeat_count",
    "fixed_rate",
    "variable_rate",
    "overhead_ratio",
    "table1_rows",
]

_EPS = 1e-9  # tolerance for beats landing exactly on a data-packet time


def fixed_heartbeat_count(dt: float, interval: float) -> int:
    """Heartbeats strictly inside one inter-data interval, fixed scheme."""
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    count = math.floor(dt / interval + _EPS)
    # A beat exactly at dt is preempted by the data packet itself.
    if abs(count * interval - dt) < _EPS:
        count -= 1
    return max(count, 0)


def variable_heartbeat_count(dt: float, config: HeartbeatConfig | None = None) -> int:
    """Heartbeats strictly inside one inter-data interval, variable scheme."""
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    cfg = config or HeartbeatConfig()
    count = 0
    h = cfg.h_min
    t = h
    while t < dt - _EPS:
        count += 1
        h = min(h * cfg.backoff, cfg.h_max)
        t += h
    return count


def fixed_rate(dt: float, interval: float = 0.25) -> float:
    """Fixed-scheme heartbeat packets per second at data interval ``dt``."""
    return fixed_heartbeat_count(dt, interval) / dt


def variable_rate(dt: float, config: HeartbeatConfig | None = None) -> float:
    """Variable-scheme heartbeat packets per second at data interval ``dt``."""
    return variable_heartbeat_count(dt, config) / dt


def overhead_ratio(dt: float, config: HeartbeatConfig | None = None) -> float:
    """Fixed/variable heartbeat-count ratio (Figure 5's y-axis).

    Returns ``inf`` when the variable scheme emits nothing (dt <= h_min)
    while the fixed scheme does; 1.0 when neither emits (dt below both).
    """
    cfg = config or HeartbeatConfig()
    fixed = fixed_heartbeat_count(dt, cfg.h_min)
    variable = variable_heartbeat_count(dt, cfg)
    if variable == 0:
        return math.inf if fixed > 0 else 1.0
    return fixed / variable


def table1_rows(
    dt: float = 120.0,
    backoffs: tuple[float, ...] = (1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
    h_min: float = 0.25,
    h_max: float = 32.0,
) -> list[tuple[float, float]]:
    """The (backoff, overhead ratio) rows of Table 1."""
    rows = []
    for backoff in backoffs:
        cfg = HeartbeatConfig(h_min=h_min, h_max=h_max, backoff=backoff)
        rows.append((backoff, overhead_ratio(dt, cfg)))
    return rows
