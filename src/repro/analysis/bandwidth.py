"""Byte-level bandwidth accounting for LBRM deployments.

The paper argues in packets/second (the DIS bottleneck is per-packet
processing and tail-circuit load), but an adopter sizing a T1 tail
circuit needs bytes.  This module prices the protocol's message types
from their actual wire encodings and evaluates steady-state bandwidth
for a group: data, heartbeats (fixed vs variable), statack overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.heartbeat_math import fixed_rate, variable_rate
from repro.core.config import HeartbeatConfig, StatAckConfig
from repro.core.packets import (
    AckerSelectPacket,
    DataAckPacket,
    DataPacket,
    HeartbeatPacket,
    encode,
)

__all__ = ["MessageSizes", "GroupBandwidth", "group_bandwidth"]

T1_BPS = 1_544_000.0  # the paper's tail-circuit technology


@dataclass(frozen=True, slots=True)
class MessageSizes:
    """Wire sizes (bytes) for a group's message types."""

    data: int
    heartbeat: int
    data_ack: int
    acker_select: int

    @classmethod
    def for_group(cls, group: str, payload_size: int) -> "MessageSizes":
        """Price the messages by actually encoding them."""
        return cls(
            data=len(encode(DataPacket(group=group, seq=1, payload=b"\x00" * payload_size))),
            heartbeat=len(encode(HeartbeatPacket(group=group, seq=1, hb_index=1))),
            data_ack=len(encode(DataAckPacket(group=group, epoch=1, seq=1))),
            acker_select=len(encode(AckerSelectPacket(group=group, epoch=1, p_ack=0.1, k=10))),
        )


@dataclass(frozen=True, slots=True)
class GroupBandwidth:
    """Steady-state downstream bandwidth for one group (bytes/second)."""

    data_bps: float
    heartbeat_bps: float
    statack_bps: float

    @property
    def total_bps(self) -> float:
        return self.data_bps + self.heartbeat_bps + self.statack_bps

    def tail_fraction(self, tail_bps: float = T1_BPS) -> float:
        """Share of a tail circuit this group consumes (bits over bytes×8)."""
        return (self.total_bps * 8.0) / tail_bps


def group_bandwidth(
    group: str = "dis/terrain/1",
    payload_size: int = 128,
    data_interval: float = 120.0,
    heartbeat: HeartbeatConfig | None = None,
    statack: StatAckConfig | None = None,
) -> GroupBandwidth:
    """Steady-state bandwidth of one LBRM group on a receiving tail.

    ``statack`` adds the per-epoch selection packet amortized over the
    epoch (ACKs flow upstream and are excluded from the downstream
    figure).  Pass a fixed :class:`HeartbeatConfig` for the baseline.
    """
    if payload_size < 0:
        raise ValueError(f"payload_size must be >= 0, got {payload_size}")
    if data_interval <= 0:
        raise ValueError(f"data_interval must be positive, got {data_interval}")
    hb_cfg = heartbeat or HeartbeatConfig()
    sizes = MessageSizes.for_group(group, payload_size)
    data_bps = sizes.data / data_interval
    if hb_cfg.is_fixed:
        hb_rate = fixed_rate(data_interval, hb_cfg.h_min)
    else:
        hb_rate = variable_rate(data_interval, hb_cfg)
    heartbeat_bps = sizes.heartbeat * hb_rate
    statack_bps = 0.0
    if statack is not None:
        packets_per_epoch = statack.epoch_length
        statack_bps = sizes.acker_select / (packets_per_epoch * data_interval)
    return GroupBandwidth(data_bps=data_bps, heartbeat_bps=heartbeat_bps, statack_bps=statack_bps)
