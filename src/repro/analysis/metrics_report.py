"""Render a :class:`~repro.obs.metrics.MetricsRegistry` snapshot.

Two output shapes, both built from :meth:`MetricsRegistry.snapshot` so
they are deterministic for a deterministic run:

* :func:`render_json` — the snapshot (optionally with the event-trace
  tail) serialized with sorted keys, for piping into other tools.
* :func:`render_text` — an aligned human-readable report, the body of
  ``repro metrics``.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.obs.trace import TraceEvent

__all__ = ["render_json", "render_text", "snapshot_with_trace"]

_HIST_COLUMNS = ("count", "mean", "p50", "p95", "p99", "max")


def snapshot_with_trace(registry, trace_tail: int = 0) -> dict:
    """The registry snapshot, plus the last ``trace_tail`` trace events."""
    snap = registry.snapshot()
    if trace_tail > 0:
        events: Iterable[TraceEvent] = registry.trace.events()
        tail = list(events)[-trace_tail:]
        snap["trace"] = {
            "emitted": registry.trace.emitted,
            "dropped": registry.trace.dropped,
            "tail": [event.as_dict() for event in tail],
        }
    return snap


def render_json(registry, trace_tail: int = 0, indent: int | None = 2) -> str:
    """Serialize the snapshot with sorted keys (bit-stable per run)."""
    return json.dumps(
        snapshot_with_trace(registry, trace_tail), indent=indent, sort_keys=True
    )


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _aligned(rows: Sequence[tuple[str, str]]) -> list[str]:
    if not rows:
        return ["  (none)"]
    width = max(len(name) for name, _ in rows)
    return [f"  {name.ljust(width)}  {value}" for name, value in rows]


def render_text(registry, trace_tail: int = 0) -> str:
    """An aligned, sectioned text report of every instrument."""
    snap = snapshot_with_trace(registry, trace_tail)
    lines: list[str] = []

    lines.append(f"counters ({len(snap['counters'])}):")
    lines.extend(_aligned([(k, _fmt(v)) for k, v in snap["counters"].items()]))

    lines.append(f"gauges ({len(snap['gauges'])}):")
    lines.extend(_aligned([(k, _fmt(v)) for k, v in snap["gauges"].items()]))

    lines.append(f"histograms ({len(snap['histograms'])}):")
    hist_rows = []
    for key, summary in snap["histograms"].items():
        cells = " ".join(f"{col}={_fmt(summary[col])}" for col in _HIST_COLUMNS)
        hist_rows.append((key, cells))
    lines.extend(_aligned(hist_rows))

    if "trace" in snap:
        trace = snap["trace"]
        lines.append(
            f"trace (emitted={trace['emitted']}, dropped={trace['dropped']}, "
            f"showing last {len(trace['tail'])}):"
        )
        if not trace["tail"]:
            lines.append("  (none)")
        for event in trace["tail"]:
            fields = " ".join(
                f"{k}={v}" for k, v in event.items() if k not in ("time", "name")
            )
            lines.append(f"  [{event['time']:.6f}] {event['name']} {fields}".rstrip())

    return "\n".join(lines)
