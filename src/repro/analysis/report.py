"""ASCII rendering of experiment results.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that output uniform: fixed-width tables, aligned
numeric columns, and a paper-vs-measured comparison layout used by
EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_comparison"]


def _render(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width table with a header rule."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure's data series as a two-column table."""
    header = f"# {name}"
    table = format_table([x_label, y_label], zip(xs, ys))
    return f"{header}\n{table}"


def format_comparison(
    title: str,
    rows: Iterable[tuple[str, object, object]],
) -> str:
    """Render (quantity, paper value, measured value) comparison rows."""
    table = format_table(["quantity", "paper", "measured"], rows)
    return f"== {title} ==\n{table}"
