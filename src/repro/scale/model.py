"""Closed-form expectations for aggregate site behaviour.

The analytic oracle the statistical-conformance tier pins the aggregate
model against.  The setting follows "Asymptotic Analysis for Reliable
Data Dissemination in Shared Loss Multicast Trees" (PAPERS.md): a site
of ``n`` receivers behind one shared tail circuit, where a packet is
lost for the *whole* site with probability ``q`` (shared tree-link
loss) and, independently, for each receiver with probability ``p``
(receiver-link loss).

Per multicast transmission:

* the number of receivers missing it is ``n`` with probability ``q``
  and otherwise Binomial(n, p) — mean ``n(q + (1-q)p)``;
* the site emits a (collapsed) NACK iff at least one receiver missed
  it: probability ``q + (1-q)(1 - (1-p)^n)`` — with distributed
  logging that is exactly one WAN NACK per site per loss event, versus
  one per *receiver* under centralized recovery (Figure 7's claim);
* recovery proceeds in rounds: each round's repair reaches each
  still-missing receiver independently with probability ``1-p``, so
  the expected number of rounds until the whole site holds the packet
  is ``E[R] = Σ_{r≥1} (1 - (1 - p^r)^n)`` — which grows like
  ``log_{1/p} n``: the shared-loss-tree asymptote the aggregate model
  must track as ``n`` grows.

Everything here is pure ``math`` — no simulator, no RNG — so these
functions double as the reference implementation for the analysis
test suite (the conformance tier is only as trustworthy as its
oracle).
"""

from __future__ import annotations

import math

__all__ = [
    "expected_miss_count",
    "miss_count_variance",
    "site_nack_probability",
    "expected_wan_nacks",
    "expected_recovery_rounds",
    "recovery_rounds_asymptote",
    "expected_repair_packets",
]

# Euler–Mascheroni constant, used by the rounds asymptote.
_EULER_GAMMA = 0.5772156649015329


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_population(n: int) -> None:
    if n < 0:
        raise ValueError(f"site population must be >= 0, got {n}")


def expected_miss_count(n: int, p: float, shared: float = 0.0) -> float:
    """Expected receivers (of ``n``) missing one transmission.

    ``p`` is the independent per-receiver loss probability, ``shared``
    the probability the shared path loses the packet for everyone.
    Zero receivers miss zero packets regardless of loss rates.
    """
    _check_population(n)
    _check_probability("p", p)
    _check_probability("shared", shared)
    return n * (shared + (1.0 - shared) * p)


def miss_count_variance(n: int, p: float, shared: float = 0.0) -> float:
    """Variance of the per-transmission miss count.

    Without shared loss this is the Binomial variance ``np(1-p)``; the
    shared component adds the all-or-nothing spread between ``n`` and
    the binomial mean (law of total variance).
    """
    _check_population(n)
    _check_probability("p", p)
    _check_probability("shared", shared)
    binom_mean = n * p
    binom_var = n * p * (1.0 - p)
    q = shared
    mean = q * n + (1.0 - q) * binom_mean
    second = q * (n * n) + (1.0 - q) * (binom_var + binom_mean * binom_mean)
    return second - mean * mean


def site_nack_probability(n: int, p: float, shared: float = 0.0) -> float:
    """P(at least one of ``n`` receivers misses a given transmission).

    With a site logger collapsing requests, this is the probability the
    site emits *any* NACK for the packet.  Uses ``expm1``/``log1p`` so
    large ``n`` with small ``p`` stays accurate (1e6 receivers at
    p = 1e-7 must not round to zero).
    """
    _check_population(n)
    _check_probability("p", p)
    _check_probability("shared", shared)
    if n == 0:
        return 0.0
    if p >= 1.0:
        p_any_local = 1.0
    elif p <= 0.0:
        p_any_local = 0.0
    else:
        # 1 - (1-p)^n computed as -expm1(n * log1p(-p)).
        p_any_local = -math.expm1(n * math.log1p(-p))
    return shared + (1.0 - shared) * p_any_local


def expected_wan_nacks(n_sites: int, n_per_site: int, p: float, shared: float = 0.0,
                       distributed: bool = True) -> float:
    """Expected WAN-crossing NACKs per transmission.

    Distributed logging (the paper's scheme) sends at most one upstream
    request per site; centralized recovery sends one per missing
    receiver — the gap Figure 7 measures, restated at any scale.
    """
    if n_sites < 0:
        raise ValueError(f"n_sites must be >= 0, got {n_sites}")
    if distributed:
        return n_sites * site_nack_probability(n_per_site, p, shared)
    return n_sites * expected_miss_count(n_per_site, p, shared)


def expected_recovery_rounds(n: int, p: float, max_rounds: int = 100_000,
                             tol: float = 1e-12) -> float:
    """E[rounds] until all of ``n`` initially-missing receivers recover.

    Each round the repair reaches each still-missing receiver
    independently with probability ``1 - p``, so
    ``E[R] = Σ_{r≥0} P(R > r) = 1 + Σ_{r≥1} (1 - (1 - p^r)^n)``
    (the r = 0 term is always 1: at least one round is needed whenever
    anyone is missing).  The tail is truncated once terms fall below
    ``tol``.

    Edge cases: ``n = 0`` needs no rounds; ``p = 0`` recovers everyone
    in exactly one round; ``p = 1`` never recovers (``inf``).
    """
    _check_population(n)
    _check_probability("p", p)
    if n == 0:
        return 0.0
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return math.inf
    total = 1.0
    for r in range(1, max_rounds + 1):
        # 1 - (1 - p^r)^n, stable for tiny p^r via expm1/log1p.
        term = -math.expm1(n * math.log1p(-(p ** r)))
        total += term
        if term < tol:
            break
    return total


def recovery_rounds_asymptote(n: int, p: float) -> float:
    """Large-``n`` asymptote of :func:`expected_recovery_rounds`.

    The maximum of ``n`` i.i.d. Geometric(1-p) round counts grows like
    ``log_{1/p} n + γ/ln(1/p) + 1/2`` — the shared-loss-tree growth law
    the conformance tier checks the aggregate model against.
    """
    _check_population(n)
    _check_probability("p", p)
    if n == 0:
        return 0.0
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return math.inf
    ln_inv_p = -math.log(p)
    return math.log(n) / ln_inv_p + _EULER_GAMMA / ln_inv_p + 0.5


def expected_repair_packets(n: int, p: float, remulticast_threshold: int) -> float:
    """Expected repair transmissions serving one site's first round.

    With ``k`` receivers missing a packet, the site logger answers with
    ``k`` unicasts when ``k`` is below the re-multicast threshold and a
    single site-scoped multicast otherwise (§2.2.1).  Summing over the
    Binomial(n, p) distribution of ``k`` gives the expectation the
    aggregate model's modeled-repair counters should match.
    """
    _check_population(n)
    _check_probability("p", p)
    if remulticast_threshold < 1:
        raise ValueError(f"remulticast_threshold must be >= 1, got {remulticast_threshold}")
    if n == 0 or p <= 0.0:
        return 0.0
    if p >= 1.0:
        return float(n) if n < remulticast_threshold else 1.0
    total = 0.0
    # Binomial pmf by recurrence; n is a *site* population, so the loop
    # is at most a few thousand iterations even at million-receiver
    # deployments (1e6 receivers = 1e3 sites of 1e3).
    pmf = (1.0 - p) ** n
    for k in range(0, n + 1):
        if k >= remulticast_threshold:
            total += 1.0 - _binom_cdf_below(n, p, remulticast_threshold)
            break
        if k > 0:
            total += k * pmf
        pmf *= (n - k) / (k + 1) * (p / (1.0 - p))
    return total


def _binom_cdf_below(n: int, p: float, k_limit: int) -> float:
    """P(K < k_limit) for K ~ Binomial(n, p)."""
    pmf = (1.0 - p) ** n
    cdf = 0.0
    for k in range(0, min(k_limit, n + 1)):
        cdf += pmf
        pmf *= (n - k) / (k + 1) * (p / (1.0 - p))
    return min(cdf, 1.0)
