"""Aggregate-form invariant checking for scale runs.

The chaos oracle grades exact deployments against I1–I4 (DESIGN.md §7)
one receiver at a time.  At aggregate scale there are no individual
receivers to grade — a site is a distribution — so the invariants are
restated over site distributions:

* **A1 (delivery, aggregate form)** — modeled losses are *conserved*:
  every drawn miss ends as a modeled recovery or an explicit modeled
  failure, and no site carries outstanding misses at run end.  On top
  of the exact conservation law, the *expected-gap* check holds the
  total miss count to the analytic Binomial expectation within a
  z-sigma band (:mod:`repro.scale.model`) — a statistically broken loss
  draw (wrong p, correlated streams) fails here even though it
  conserves perfectly.
* **A2 (silence bound, aggregate form)** — a site declares staleness
  only inside a scheduled outage window, extended by the heartbeat
  watchdog bound (slack × h_max) the exact oracle uses.
* **A3 (log completeness)** — every site logger ends holding the full
  contiguous prefix the source released: site loggers are real
  :class:`~repro.core.logger.LogServer` machines, so this is the exact
  I3, unchanged by aggregation.
* **A4 (monotone promotion)** — the hub's roles are stable: scale runs
  schedule no failover, so any promotion or role flap is a bug.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.logger import LoggerRole
from repro.scale import model
from repro.scale.deploy import AggregateDeployment
from repro.scale.shard import ScaleScenario

__all__ = ["AggregateViolation", "AggregateOracle"]


@dataclass(frozen=True, slots=True)
class AggregateViolation:
    """One breached aggregate invariant."""

    invariant: str  # "A1-conservation" | "A1-expected-gap" | "A2-silence" | ...
    subject: str
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "subject": self.subject, "detail": self.detail}


class AggregateOracle:
    """End-of-run judge for one aggregate deployment.

    ``z`` is the width of the expected-gap band in standard deviations;
    the default 6 makes a false alarm astronomically unlikely across
    repeated CI runs while still catching a loss model that is off by
    a few percent over a few thousand draws.
    """

    def __init__(self, scenario: ScaleScenario, z: float = 6.0) -> None:
        self.scenario = scenario
        self.z = z
        self.violations: list[AggregateViolation] = []

    def _flag(self, invariant: str, subject: str, detail: str) -> None:
        self.violations.append(AggregateViolation(invariant, subject, detail))

    # -- individual checks ----------------------------------------------------

    def check_conservation(self, dep: AggregateDeployment) -> None:
        """A1: drawn misses all resolve; nothing outstanding at run end."""
        for i, agg in zip(dep.site_indices, dep.aggregates):
            stats = agg.stats
            resolved = stats["modeled_recoveries"] + stats["modeled_recovery_failures"]
            pending = agg.outstanding
            if stats["modeled_losses"] != resolved + pending:
                self._flag(
                    "A1-conservation",
                    f"site{i}",
                    f"losses={stats['modeled_losses']} != recovered={stats['modeled_recoveries']}"
                    f" + failed={stats['modeled_recovery_failures']} + outstanding={pending}",
                )
            if pending:
                self._flag(
                    "A1-conservation",
                    f"site{i}",
                    f"{pending} modeled receivers still missing packets at run end",
                )

    def check_expected_gap(self, dep: AggregateDeployment) -> None:
        """A1: total misses within ±z·σ of the analytic expectation."""
        spec = self.scenario.spec
        n_tx = self.scenario.n_packets
        n_sites = len(dep.site_indices)
        per_tx_mean = model.expected_miss_count(
            spec.receivers_per_site, spec.receiver_loss, spec.shared_loss
        )
        per_tx_var = model.miss_count_variance(
            spec.receivers_per_site, spec.receiver_loss, spec.shared_loss
        )
        mean = n_sites * n_tx * per_tx_mean
        sigma = math.sqrt(n_sites * n_tx * per_tx_var)
        observed = sum(agg.stats["modeled_losses"] for agg in dep.aggregates)
        # Bursts add deterministic site-wide misses on top of the drawn
        # ones; they widen the upper band by their worst case (every
        # burst packet lost site-wide).
        burst_allowance = len(self.scenario.bursts) * n_tx * spec.receivers_per_site
        lo = mean - self.z * sigma
        hi = mean + self.z * sigma + burst_allowance
        if not lo <= observed <= hi:
            self._flag(
                "A1-expected-gap",
                "deployment",
                f"total modeled losses {observed} outside [{lo:.1f}, {hi:.1f}]"
                f" (mean {mean:.1f}, sigma {sigma:.2f}, z {self.z})",
            )

    def check_silence(self, dep: AggregateDeployment) -> None:
        """A2: staleness only inside scheduled outages + watchdog bound."""
        hb = self.scenario.spec.config.heartbeat
        slack = self.scenario.spec.config.receiver.watchdog_slack
        bound = slack * hb.h_max
        windows = {
            site_index: (start, start + duration + bound)
            for start, site_index, duration in self.scenario.bursts
        }
        for i, agg in zip(dep.site_indices, dep.aggregates):
            for t, kind, _seq, _count in agg.event_log:
                if kind != "stale":
                    continue
                window = windows.get(i)
                if window is None or not window[0] <= t <= window[1]:
                    self._flag(
                        "A2-silence",
                        f"site{i}",
                        f"freshness lost at t={t:.3f} with no scheduled outage covering it",
                    )

    def check_log_completeness(self, dep: AggregateDeployment) -> None:
        """A3: every site logger holds the full released prefix."""
        assert dep.sender is not None
        released = dep.sender.seq
        for i, logger in zip(dep.site_indices, dep.site_loggers):
            held = logger.primary_seq
            if held < released:
                self._flag(
                    "A3-log-completeness",
                    f"site{i}-logger",
                    f"holds contiguous prefix {held} < released {released}",
                )

    def check_promotion(self, dep: AggregateDeployment) -> None:
        """A4: hub roles are stable — no failover is ever scheduled."""
        assert dep.primary is not None
        if dep.primary.role is not LoggerRole.PRIMARY:
            self._flag(
                "A4-promotion",
                "primary",
                f"primary's role changed to {dep.primary.role.value}",
            )
        for i, logger in zip(dep.site_indices, dep.site_loggers):
            if logger.role is not LoggerRole.SECONDARY:
                self._flag(
                    "A4-promotion",
                    f"site{i}-logger",
                    f"site logger's role changed to {logger.role.value}",
                )

    # -- entry point ----------------------------------------------------------

    def check_all(self, dep: AggregateDeployment) -> list[AggregateViolation]:
        """Run every aggregate invariant; returns (and stores) violations."""
        self.check_conservation(dep)
        self.check_expected_gap(dep)
        self.check_silence(dep)
        self.check_log_completeness(dep)
        self.check_promotion(dep)
        return self.violations
