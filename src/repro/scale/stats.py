"""Two-sample conformance statistics, dependency-free.

The statistical-conformance tier compares distributions produced by the
aggregate site model against the exact per-receiver engine
(NACK-per-heartbeat counts, repair traffic, recovery latencies).  The
comparisons need a two-sample Kolmogorov–Smirnov test for continuous
samples and a χ² homogeneity test for count data — implemented here on
the stdlib only, so the package keeps its zero-dependency contract.
Where SciPy is present, the test suite pins these implementations
against ``scipy.stats`` (the oracle's oracle).

Formulas follow Numerical Recipes: the KS p-value uses the asymptotic
Kolmogorov distribution with the Stephens small-sample correction; the
χ² p-value uses the regularized incomplete gamma function (series
expansion below ``a + 1``, continued fraction above).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "KsResult",
    "Chi2Result",
    "ks_statistic",
    "kolmogorov_sf",
    "ks_2sample",
    "chi2_sf",
    "chi2_homogeneity",
]


@dataclass(frozen=True)
class KsResult:
    """Two-sample KS outcome: the sup-distance and its p-value."""

    statistic: float
    pvalue: float
    n: int
    m: int


@dataclass(frozen=True)
class Chi2Result:
    """χ² homogeneity outcome (after low-count bin pooling)."""

    statistic: float
    dof: int
    pvalue: float
    bins: int


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """Sup-norm distance between the empirical CDFs of ``a`` and ``b``."""
    if not a or not b:
        raise ValueError("ks_statistic requires two non-empty samples")
    xs = sorted(a)
    ys = sorted(b)
    n, m = len(xs), len(ys)
    i = j = 0
    d = 0.0
    # Empirical CDFs only change at sample points, and at a tied value
    # both must step *together* before the gap is measured — integer
    # count data is mostly ties, and measuring mid-step would report a
    # spurious 1/n distance even for identical samples.
    while i < n and j < m:
        x = xs[i] if xs[i] <= ys[j] else ys[j]
        while i < n and xs[i] == x:
            i += 1
        while j < m and ys[j] == x:
            j += 1
        diff = abs(i / n - j / m)
        if diff > d:
            d = diff
    return d


def kolmogorov_sf(lam: float) -> float:
    """Q_KS(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²) — the asymptotic
    survival function of the KS statistic."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    sign = 1.0
    for k in range(1, 101):
        term = sign * math.exp(-2.0 * (k * lam) ** 2)
        total += term
        if abs(term) < 1e-12 * abs(total) or abs(term) < 1e-300:
            break
        sign = -sign
    return max(0.0, min(1.0, 2.0 * total))


def ks_2sample(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """Two-sample KS test with the Stephens-corrected asymptotic p-value.

    ``p = Q_KS((√n_eff + 0.12 + 0.11/√n_eff) · D)`` with
    ``n_eff = nm/(n+m)`` — accurate to a few percent for
    ``n_eff ≥ 4``, which every conformance comparison exceeds.
    """
    d = ks_statistic(a, b)
    n, m = len(a), len(b)
    n_eff = math.sqrt(n * m / (n + m))
    pvalue = kolmogorov_sf((n_eff + 0.12 + 0.11 / n_eff) * d)
    return KsResult(statistic=d, pvalue=pvalue, n=n, m=m)


# -- χ² via the regularized incomplete gamma function -----------------------


def _gamma_p_series(a: float, x: float) -> float:
    """Lower regularized incomplete gamma P(a, x) by series (x < a+1)."""
    if x <= 0.0:
        return 0.0
    ap = a
    total = term = 1.0 / a
    for _ in range(10_000):
        ap += 1.0
        term *= x / ap
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_q_contfrac(a: float, x: float) -> float:
    """Upper regularized incomplete gamma Q(a, x) by continued fraction
    (x >= a+1), modified Lentz's method."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 10_000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return math.exp(-x + a * math.log(x) - math.lgamma(a)) * h


def chi2_sf(x: float, dof: int) -> float:
    """P(X > x) for X ~ χ²(dof) — i.e. Q(dof/2, x/2)."""
    if dof < 1:
        raise ValueError(f"dof must be >= 1, got {dof}")
    if x <= 0.0:
        return 1.0
    a = dof / 2.0
    half = x / 2.0
    if half < a + 1.0:
        return max(0.0, min(1.0, 1.0 - _gamma_p_series(a, half)))
    return max(0.0, min(1.0, _gamma_q_contfrac(a, half)))


def _pool_counts(
    counts_a: Sequence[float], counts_b: Sequence[float], min_expected: float
) -> tuple[list[float], list[float]]:
    """Pool adjacent categories until every expected cell count is
    ``min_expected`` or more (the standard χ² validity rule)."""
    total_a = sum(counts_a)
    total_b = sum(counts_b)
    grand = total_a + total_b
    pooled_a: list[float] = []
    pooled_b: list[float] = []
    acc_a = acc_b = 0.0
    for ca, cb in zip(counts_a, counts_b):
        acc_a += ca
        acc_b += cb
        col = acc_a + acc_b
        # Both rows' expected counts for this pooled column.
        if (col * total_a / grand >= min_expected
                and col * total_b / grand >= min_expected):
            pooled_a.append(acc_a)
            pooled_b.append(acc_b)
            acc_a = acc_b = 0.0
    if acc_a or acc_b:
        if pooled_a:
            pooled_a[-1] += acc_a
            pooled_b[-1] += acc_b
        else:
            pooled_a.append(acc_a)
            pooled_b.append(acc_b)
    return pooled_a, pooled_b


def chi2_homogeneity(
    counts_a: Sequence[float],
    counts_b: Sequence[float],
    min_expected: float = 5.0,
) -> Chi2Result:
    """χ² test that two category-count vectors come from one distribution.

    ``counts_a[i]`` and ``counts_b[i]`` are observations of the same
    category (e.g. "i receivers missed the packet") from the two
    engines.  Adjacent low-expectation categories are pooled before the
    2×K contingency statistic is computed.  If pooling collapses the
    data to a single column the samples are indistinguishable at this
    resolution and the result is a pass (p = 1).
    """
    if len(counts_a) != len(counts_b):
        raise ValueError("count vectors must align category-for-category")
    if any(c < 0 for c in counts_a) or any(c < 0 for c in counts_b):
        raise ValueError("counts must be non-negative")
    total_a = sum(counts_a)
    total_b = sum(counts_b)
    if total_a == 0 or total_b == 0:
        raise ValueError("each sample must contain at least one observation")
    pooled_a, pooled_b = _pool_counts(counts_a, counts_b, min_expected)
    k = len(pooled_a)
    if k < 2:
        return Chi2Result(statistic=0.0, dof=0, pvalue=1.0, bins=k)
    grand = total_a + total_b
    stat = 0.0
    for ca, cb in zip(pooled_a, pooled_b):
        col = ca + cb
        ea = col * total_a / grand
        eb = col * total_b / grand
        stat += (ca - ea) ** 2 / ea + (cb - eb) ** 2 / eb
    dof = k - 1
    return Chi2Result(statistic=stat, dof=dof, pvalue=chi2_sf(stat, dof), bins=k)
