"""Aggregate-scale modeling: million-receiver LBRM runs.

The paper's log-based scheme exists so DIS exercises can grow past what
per-receiver state allows; this package makes the *simulation* scale
the same way the protocol does.  Two mechanisms compose:

* :class:`~repro.scale.aggregate.AggregateSiteReceiver` — one simnet
  node statistically representing N co-site receivers (Binomial miss
  draws, collapsed NACKs, binomially-thinned repair rounds);
* :func:`~repro.scale.shard.run_sharded` — sites partitioned across
  worker processes in conservative time windows, leaning on LBRM's
  site locality for shard-count-invariant results.

Correctness rests on the statistical-conformance test tier
(tests/scale/): at overlapping scales the aggregate model must match
the exact engine's distributions within KS/χ² tolerances
(:mod:`repro.scale.stats`) and track the closed-form asymptotics
(:mod:`repro.scale.model`); :class:`~repro.scale.oracle.AggregateOracle`
grades live runs against the I1–I4 invariants restated over site
distributions.  See DESIGN.md §9.
"""

from repro.scale.aggregate import EXACT_DRAW_LIMIT, AggregateSiteReceiver, binomial_variate
from repro.scale.deploy import AggregateDeployment, ScaleSpec
from repro.scale.model import (
    expected_miss_count,
    expected_recovery_rounds,
    expected_repair_packets,
    expected_wan_nacks,
    miss_count_variance,
    recovery_rounds_asymptote,
    site_nack_probability,
)
from repro.scale.oracle import AggregateOracle, AggregateViolation
from repro.scale.shard import (
    ScaleScenario,
    ShardReport,
    ShardWorkerError,
    protocol_digest,
    run_sharded,
    trace_bytes,
)
from repro.scale.stats import Chi2Result, KsResult, chi2_homogeneity, chi2_sf, ks_2sample

__all__ = [
    "AggregateSiteReceiver",
    "binomial_variate",
    "EXACT_DRAW_LIMIT",
    "AggregateDeployment",
    "ScaleSpec",
    "ScaleScenario",
    "ShardReport",
    "ShardWorkerError",
    "run_sharded",
    "protocol_digest",
    "trace_bytes",
    "AggregateOracle",
    "AggregateViolation",
    "ks_2sample",
    "chi2_homogeneity",
    "chi2_sf",
    "KsResult",
    "Chi2Result",
    "expected_miss_count",
    "miss_count_variance",
    "site_nack_probability",
    "expected_wan_nacks",
    "expected_recovery_rounds",
    "recovery_rounds_asymptote",
    "expected_repair_packets",
]
