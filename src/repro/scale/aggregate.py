"""One simnet node statistically representing N co-site receivers.

The paper's architecture makes a site's receivers *statistically
exchangeable* from the WAN's point of view: they share one tail
circuit, one site logger, and one collapsed upstream NACK (§2.2.1,
§2.2.2).  :class:`AggregateSiteReceiver` exploits that — instead of N
:class:`~repro.core.receiver.LbrmReceiver` objects it keeps one
host-level :class:`~repro.core.sequence.SequenceTracker` (shared
tail-circuit losses fall out of the simnet topology exactly as before)
and draws the *independent* per-receiver outcomes from the site's loss
model:

* per transmission, the number of modeled receivers missing it is a
  Binomial(N, p) draw (:func:`binomial_variate`);
* a loss event sends one collapsed NACK up the logger chain — the wire
  behaviour an exact site already exhibits after its logger's collapse
  — while the modeled LAN-level NACKs (one per missing receiver per
  round) are counted, not transmitted;
* each repair round thins the outstanding count binomially (every
  still-missing receiver independently loses the repair with
  probability p), producing ``(latency, count)`` weighted
  recovery-completion samples and per-round modeled repair traffic
  (k unicasts below the re-multicast threshold; at or above it, the
  threshold-1 unicasts the exact logger serves before the threshold
  trips, one site-scoped re-multicast, then unicasts for the rest of
  the request window — mirroring ``LogServer._repair`` and
  ``SiteRequestTracker``'s fire-once-per-window rule).

The statistical-conformance test tier (tests/scale/) holds these draws
to the exact engine's distributions at overlapping scales; nothing here
is trusted without that comparison.

``binomial_variate`` deliberately spends one uniform per modeled
receiver when N is small (≤ ``exact_draw_limit``): the draw sequence is
then *exchangeable* with N per-receiver Bernoulli loss draws from an
identically-seeded stream, which is what lets the property suite compare
aggregate and exact engines seed-for-seed.  Above the limit it switches
to single-uniform inversion around the binomial mode.
"""

from __future__ import annotations

import math
import random

from repro import obs
from repro.core.actions import Action, Address, JoinGroup, Notify, SendUnicast
from repro.core.config import HeartbeatConfig, ReceiverConfig
from repro.core.events import (
    FreshnessLost,
    FreshnessRestored,
    LossDetected,
    RecoveryComplete,
    RecoveryFailed,
)
from repro.core.machine import ProtocolMachine
from repro.core.packets import (
    DataPacket,
    HeartbeatPacket,
    NackPacket,
    Packet,
    RetransPacket,
)
from repro.core.sequence import SequenceTracker

__all__ = ["binomial_variate", "EXACT_DRAW_LIMIT", "AggregateSiteReceiver"]

# Below this population a binomial draw spends one uniform per modeled
# receiver, making the stream exchangeable with per-receiver Bernoulli
# draws (the conformance property the hypothesis suite pins).  64 covers
# every per-site population the exact engine is ever run at.
EXACT_DRAW_LIMIT = 64


def binomial_variate(rng: random.Random, n: int, p: float,
                     exact_limit: int = EXACT_DRAW_LIMIT) -> int:
    """One Binomial(n, p) draw from ``rng``.

    ``n ≤ exact_limit``: sum of ``n`` Bernoulli draws — one
    ``rng.random()`` per modeled receiver, in receiver order, so the
    stream is exchangeable with the exact engine's per-receiver loss
    draws.  Larger ``n``: a single uniform inverted through the binomial
    CDF, accumulated outward from the mode so the pmf recurrence never
    underflows (pmf(0) alone would for large ``n·p``).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    if n <= exact_limit:
        count = 0
        for _ in range(n):
            if rng.random() < p:
                count += 1
        return count
    u = rng.random()
    mode = int((n + 1) * p)
    if mode > n:
        mode = n
    log_pmf = (
        math.lgamma(n + 1) - math.lgamma(mode + 1) - math.lgamma(n - mode + 1)
        + mode * math.log(p) + (n - mode) * math.log1p(-p)
    )
    pmf_mode = math.exp(log_pmf)
    acc = pmf_mode
    if u <= acc:
        return mode
    lo = hi = mode
    pmf_lo = pmf_hi = pmf_mode
    ratio = p / (1.0 - p)
    while lo > 0 or hi < n:
        if hi < n:
            pmf_hi *= (n - hi) / (hi + 1) * ratio
            hi += 1
            acc += pmf_hi
            if u <= acc:
                return hi
        if lo > 0:
            pmf_lo *= lo / ((n - lo + 1) * ratio)
            lo -= 1
            acc += pmf_lo
            if u <= acc:
                return lo
    # Floating-point mass summed to slightly under 1 and u landed in the
    # sliver: the mode is the least-wrong answer.
    return mode


class _SiteRecovery:
    """Recovery state for one sequence across the site's modeled receivers."""

    __slots__ = (
        "seq", "detected_at", "outstanding", "attempts", "level", "site_wide",
        "multicast_done",
    )

    def __init__(self, seq: int, detected_at: float, outstanding: int, site_wide: bool) -> None:
        self.seq = seq
        self.detected_at = detected_at
        self.outstanding = outstanding  # modeled receivers still missing it
        self.attempts = 0  # NACK rounds sent to the current chain level
        self.level = 0  # index into the logger chain
        self.site_wide = site_wide  # everyone missed it (shared tail loss)
        self.multicast_done = False  # a re-multicast already served this window


class AggregateSiteReceiver(ProtocolMachine):
    """Statistical stand-in for ``site_size`` co-site receivers.

    Parameters
    ----------
    group:
        The multicast group to subscribe to.
    site_size:
        How many receivers this node represents.
    loss_rate:
        Independent per-receiver loss probability ``p`` — the part of
        the site's loss model the exact engine expresses as per-host
        ``inbound_loss``.  Shared tail-circuit loss stays on the simnet
        link and reaches this machine as an ordinary sequence gap.
    rng:
        The site's dedicated stream (``RngStreams.stream(f"site:...")``)
        — name-derived, so draws are identical no matter which shard the
        site lands on.
    logger_chain:
        Recovery targets nearest-first, e.g. ``(site_logger, primary)``.
    remulticast_threshold:
        The site logger's unicast-vs-remulticast cutover, used to model
        per-round repair traffic.
    """

    def __init__(
        self,
        group: str,
        site_size: int,
        loss_rate: float,
        rng: random.Random,
        *,
        config: ReceiverConfig | None = None,
        logger_chain: tuple[Address, ...] = (),
        heartbeat: HeartbeatConfig | None = None,
        remulticast_threshold: int = 3,
        node_name: str = "",
    ) -> None:
        super().__init__()
        if site_size < 1:
            raise ValueError(f"site_size must be >= 1, got {site_size}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._group = group
        self.site_size = site_size
        self.loss_rate = loss_rate
        self._rng = rng
        self._config = config or ReceiverConfig()
        self._heartbeat = heartbeat
        self._chain = tuple(logger_chain)
        self._threshold = remulticast_threshold
        self._tracker = SequenceTracker()
        self._site: dict[int, _SiteRecovery] = {}

        # Freshness watchdog, identical to LbrmReceiver's: the aggregate
        # node hears the same multicast stream an exact receiver would,
        # so MaxIT silence means the same thing for all N it represents.
        self._last_rx: float | None = None
        self._expected_interval = self._config.max_idle_time
        self._maxit_deadline: float | None = None
        self._fresh = True
        self._stale_since: float | None = None

        # Conformance observables.  miss_draws records the modeled miss
        # count per original transmission (zeros included — the exact
        # engine's per-seq histograms have a zero bin too); samples are
        # (latency, receivers recovered) pairs per repair round.
        self.miss_draws: list[int] = []
        self.recovery_samples: list[tuple[float, int]] = []
        # Deterministic per-site event log, merged across shards by the
        # ShardedSimulator: (time, kind, seq, count) tuples.
        self.event_log: list[tuple[float, str, int, int]] = []

        self.stats = obs.stat_counters(
            "agg_receiver",
            {
                "data_received": 0,
                "heartbeats_received": 0,
                "retrans_received": 0,
                "nacks_sent": 0,  # collapsed wire NACKs actually transmitted
                "modeled_losses": 0,  # per-receiver misses drawn
                "modeled_nacks": 0,  # LAN NACKs N receivers would have sent
                "modeled_recoveries": 0,
                "modeled_recovery_failures": 0,
                "modeled_retrans_unicast": 0,
                "modeled_retrans_multicast": 0,
                "freshness_losses": 0,
            },
            node=node_name,
        )

    # -- introspection ----------------------------------------------------

    @property
    def group(self) -> str:
        return self._group

    @property
    def tracker(self) -> SequenceTracker:
        return self._tracker

    @property
    def fresh(self) -> bool:
        return self._fresh

    @property
    def outstanding(self) -> int:
        """Modeled receivers currently missing at least one packet."""
        return sum(rec.outstanding for rec in self._site.values())

    @property
    def logger_chain(self) -> tuple[Address, ...]:
        return self._chain

    # -- lifecycle ----------------------------------------------------------

    def start(self, now: float) -> list[Action]:
        self._last_rx = now
        self._expected_interval = self._config.max_idle_time
        self._maxit_deadline = now + self._config.watchdog_slack * self._expected_interval
        return [JoinGroup(group=self._group)]

    def _hb_interval(self, hb_index: int) -> float:
        if self._heartbeat is None:
            return self._config.max_idle_time
        hb = self._heartbeat
        return min(hb.h_min * hb.backoff**hb_index, hb.h_max)

    # -- inbound ----------------------------------------------------------

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        if isinstance(packet, DataPacket):
            return self._on_data(packet, now)
        if isinstance(packet, HeartbeatPacket):
            return self._on_heartbeat(packet, now)
        if isinstance(packet, RetransPacket):
            return self._on_retrans(packet, now)
        return []

    def _liveness(self, hb_index: int, now: float) -> list[Action]:
        self._expected_interval = self._hb_interval(hb_index)
        self._last_rx = now
        self._maxit_deadline = now + self._config.watchdog_slack * self._expected_interval
        if self._fresh:
            return []
        self._fresh = True
        silent = now - self._stale_since if self._stale_since is not None else 0.0
        self._stale_since = None
        return [Notify(FreshnessRestored(silent_for=silent))]

    def _on_data(self, packet: DataPacket, now: float) -> list[Action]:
        self.stats["data_received"] += 1
        report = self._tracker.observe_data(packet.seq)
        actions = self._liveness(0, now)
        if report.filled_gap:
            # A re-multicast (or sender repeat) delivered a site-wide
            # missing packet to the whole LAN: thin the outstanding
            # count exactly as a repair round would.
            actions.extend(self._repair_round(packet.seq, now, on_lan=True))
        elif report.is_new:
            k = binomial_variate(self._rng, self.site_size, self.loss_rate)
            self.miss_draws.append(k)
            if k:
                self.stats["modeled_losses"] += k
                actions.extend(self._begin_recovery(packet.seq, k, now, site_wide=False))
        if report.new_gaps:
            actions.extend(self._begin_site_wide(report.new_gaps, now))
        return actions

    def _on_heartbeat(self, packet: HeartbeatPacket, now: float) -> list[Action]:
        self.stats["heartbeats_received"] += 1
        actions = self._liveness(packet.hb_index, now)
        report = self._tracker.observe_heartbeat(packet.seq)
        if report.new_gaps:
            actions.extend(self._begin_site_wide(report.new_gaps, now))
        return actions

    def _on_retrans(self, packet: RetransPacket, now: float) -> list[Action]:
        self.stats["retrans_received"] += 1
        report = self._tracker.observe_data(packet.seq)
        # A TTL-scoped re-multicast reaches every modeled receiver's LAN
        # interface; a unicast repair lands on this node only, but stands
        # in for the per-requester unicasts the exact logger would have
        # sent — both thin the outstanding count one round.
        actions = self._repair_round(packet.seq, now, on_lan=report.filled_gap)
        if report.new_gaps:
            actions.extend(self._begin_site_wide(report.new_gaps, now))
        return actions

    # -- modeled recovery ----------------------------------------------------

    def _begin_site_wide(self, gaps: tuple[int, ...], now: float) -> list[Action]:
        """Shared tail-circuit loss: every modeled receiver missed ``gaps``."""
        fresh = [s for s in gaps if s not in self._site]
        if not fresh:
            return []
        n = self.site_size
        self.stats["modeled_losses"] += n * len(fresh)
        # Site-wide misses are deterministic (shared fate), not drawn,
        # but they belong in the per-transmission miss histogram.
        self.miss_draws.extend(n for _ in fresh)
        actions: list[Action] = []
        for seq in fresh:
            actions.extend(self._begin_recovery(seq, n, now, site_wide=True))
        return actions

    def _begin_recovery(self, seq: int, k: int, now: float, site_wide: bool) -> list[Action]:
        rec = _SiteRecovery(seq, now, k, site_wide)
        self._site[seq] = rec
        self.stats["modeled_nacks"] += k  # round 1: every missing receiver NACKs
        self.event_log.append((now, "loss", seq, k))
        actions: list[Action] = [
            Notify(LossDetected(seqs=(seq,), via_silence=False)),
        ]
        actions.extend(self._fire_nack(rec, now))
        return actions

    def _fire_nack(self, rec: _SiteRecovery, now: float) -> list[Action]:
        """Send the collapsed wire NACK for one recovery round."""
        if not self._chain:
            return self._give_up(rec, now)
        level = min(rec.level, len(self._chain) - 1)
        rec.attempts += 1
        self.timers.set(("nack", rec.seq), now + self._config.nack_retry)
        self.stats["nacks_sent"] += 1
        return [
            SendUnicast(
                dest=self._chain[level],
                packet=NackPacket(group=self._group, seqs=(rec.seq,)),
            )
        ]

    def _repair_round(self, seq: int, now: float, on_lan: bool) -> list[Action]:
        rec = self._site.get(seq)
        if rec is None:
            return []
        k = rec.outstanding
        # Model the repair traffic the exact site logger would have
        # produced for this round's k requesters.  A site-wide loss means
        # the logger itself missed the packet, so requests queue until the
        # upstream repair lands and are served by one re-multicast
        # (LogServer._serve_pending).  Otherwise the logger holds the
        # entry and serves each NACK *as it arrives* (LogServer._repair):
        # the first threshold-1 requesters get unicasts, the threshold-th
        # trips the site re-multicast, and every later request in the same
        # window — including retry rounds — falls back to unicast because
        # SiteRequestTracker fires at most once per window.
        if rec.site_wide:
            unicasts, multicasts = 0, 1
            rec.multicast_done = True
        elif k >= self._threshold and not rec.multicast_done:
            unicasts, multicasts = k - 1, 1
            rec.multicast_done = True
        else:
            unicasts, multicasts = k, 0
        if unicasts:
            self.stats["modeled_retrans_unicast"] += unicasts
            self.event_log.append((now, "repair_unicast", seq, unicasts))
        if multicasts:
            self.stats["modeled_retrans_multicast"] += multicasts
            self.event_log.append((now, "repair_multicast", seq, multicasts))
        # Each still-missing receiver independently loses the repair.  In
        # a unicast+re-multicast round all requesters but the threshold-
        # tripper are served twice (their unicast reply AND the overheard
        # site re-multicast), so they stay missing only by losing both —
        # the p² redundancy that makes the exact engine's retry rate
        # visibly lower than p.
        if unicasts and multicasts:
            dual = binomial_variate(self._rng, k - 1, self.loss_rate)
            survivors = binomial_variate(self._rng, dual, self.loss_rate)
            if self._rng.random() < self.loss_rate:  # the tripper, mc-only
                survivors += 1
        else:
            survivors = binomial_variate(self._rng, k, self.loss_rate)
        recovered = k - survivors
        actions: list[Action] = []
        if recovered:
            latency = now - rec.detected_at
            self.stats["modeled_recoveries"] += recovered
            self.recovery_samples.append((latency, recovered))
            self.event_log.append((now, "recover", seq, recovered))
        if survivors == 0:
            del self._site[seq]
            self.timers.cancel(("nack", seq))
            actions.append(
                Notify(RecoveryComplete(seq=seq, latency=now - rec.detected_at))
            )
            return actions
        # Follow-up round: the repaired copy the survivors just lost was
        # their recovery attempt; they re-NACK after the retry interval.
        # Losing the re-multicast unshares the fate: survivors are now an
        # independent minority, not the whole site.
        rec.outstanding = survivors
        rec.site_wide = False
        self.stats["modeled_nacks"] += survivors
        self.timers.set(("nack", seq), now + self._config.nack_retry)
        return actions

    # -- timers ----------------------------------------------------------

    def next_wakeup(self) -> float | None:
        due = self.timers.next_deadline()
        maxit = self._maxit_deadline
        if maxit is None:
            return due
        if due is None or maxit < due:
            return maxit
        return due

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        maxit = self._maxit_deadline
        if maxit is not None and maxit <= now:
            actions.extend(self._on_maxit(now))
        for key in self.timers.pop_due(now):
            rec = self._site.get(key[1])
            if rec is None:
                continue
            if rec.attempts >= self._config.max_nack_retries + 1:
                actions.extend(self._escalate(rec, now))
            else:
                actions.extend(self._fire_nack(rec, now))
        return actions

    def _on_maxit(self, now: float) -> list[Action]:
        idle = now - self._last_rx if self._last_rx is not None else self._config.max_idle_time
        self._maxit_deadline = now + self._config.watchdog_slack * self._expected_interval
        if not self._fresh:
            return []
        self._fresh = False
        self._stale_since = self._last_rx
        self.stats["freshness_losses"] += 1
        self.event_log.append((now, "stale", -1, self.site_size))
        return [
            Notify(FreshnessLost(idle_for=idle)),
            Notify(LossDetected(seqs=(), via_silence=True)),
        ]

    def _escalate(self, rec: _SiteRecovery, now: float) -> list[Action]:
        if rec.level + 1 < len(self._chain):
            rec.level += 1
            rec.attempts = 0
            return self._fire_nack(rec, now)
        return self._give_up(rec, now)

    def _give_up(self, rec: _SiteRecovery, now: float) -> list[Action]:
        self._site.pop(rec.seq, None)
        self.timers.cancel(("nack", rec.seq))
        self._tracker.abandon((rec.seq,))
        self.stats["modeled_recovery_failures"] += rec.outstanding
        self.event_log.append((now, "abandon", rec.seq, rec.outstanding))
        return [Notify(RecoveryFailed(seq=rec.seq, attempts=rec.attempts))]

    # -- shard merge support ----------------------------------------------

    def digest(self) -> dict:
        """Deterministic, JSON-stable summary used by shard merge tests."""
        return {
            "site_size": self.site_size,
            "stats": dict(self.stats),
            "miss_draws": list(self.miss_draws),
            "samples": [(round(t, 9), c) for t, c in self.recovery_samples],
            "events": [(round(t, 9), kind, seq, c) for t, kind, seq, c in self.event_log],
        }
