"""Aggregate-scale LBRM deployments.

Mirrors :class:`repro.simnet.deploy.LbrmDeployment` — same hub site
(source + primary at ``site0``), same site loggers (real
:class:`~repro.core.logger.LogServer` machines), same link latencies —
but each receiver site hosts a single :class:`AggregateSiteReceiver`
standing in for N receivers instead of N receiver nodes.  A 200-site ×
500-receiver deployment is 402 simulated hosts modeling 100,000
receivers.

Shard-safety invariants (relied on by :mod:`repro.scale.shard`):

* every RNG stream is **name-derived** (``site:<name>``, ``loss:<name>``,
  ``logger:<name>``, ``sender``) — a site draws identical randomness no
  matter which worker builds it, or how many other sites that worker
  holds;
* hub links and the backbone are deterministic (latency only: no loss,
  no bandwidth, no jitter), so the replicated hub consumes zero RNG and
  evolves identically in every shard;
* statistical acknowledgement stays off — it is the one mechanism whose
  hub behaviour depends on the *set* of responding sites;
* the primary never re-multicasts repairs (it answers each requester by
  unicast, see ``LogServer._repair``), so one site's losses never
  change what another site receives.

``site_indices`` builds a deployment holding only a subset of the
receiver sites — the per-worker view of a sharded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.sender import LbrmSender
from repro.scale.aggregate import AggregateSiteReceiver
from repro.simnet.engine import Simulator
from repro.simnet.loss import BernoulliLoss
from repro.simnet.node import SimNode
from repro.simnet.rng import RngStreams
from repro.simnet.topology import Network, Site

__all__ = ["ScaleSpec", "AggregateDeployment"]


@dataclass(frozen=True)
class ScaleSpec:
    """Shape of an aggregate-scale deployment.

    ``receivers_per_site`` is the modeled population behind each
    aggregate host; ``receiver_loss`` the independent per-receiver loss
    probability (what the exact engine expresses as per-host
    ``inbound_loss``); ``shared_loss`` the per-transmission probability
    that a site's tail circuit drops the packet for the whole site.
    Latency defaults match :class:`repro.simnet.deploy.DeploymentSpec`
    (§2.2.2 ping survey).  Tail bandwidth/queueing are deliberately
    absent: scale runs keep every link latency-only so the replicated
    hub stays deterministic (see module docstring).
    """

    group: str = "dis/terrain/1"
    n_sites: int = 50
    receivers_per_site: int = 20
    receiver_loss: float = 0.01
    shared_loss: float = 0.0
    lan_latency: float = 0.001
    tail_latency: float = 0.0175
    backbone_latency: float = 0.0025
    config: LbrmConfig = field(default_factory=LbrmConfig)
    seed: int = 0

    @property
    def total_receivers(self) -> int:
        return self.n_sites * self.receivers_per_site

    def wan_one_way(self) -> float:
        """Cross-site one-way latency — the conservative sync window.

        Any event one site emits takes at least this long to influence
        another site (or the hub): LAN → tail-up → backbone → tail-down
        → LAN.  The sharded runner uses it as the barrier quantum.
        """
        return 2 * self.lan_latency + 2 * self.tail_latency + self.backbone_latency


class AggregateDeployment:
    """A built aggregate-scale deployment: hub, site loggers, aggregates."""

    def __init__(
        self,
        spec: ScaleSpec | None = None,
        sim: Simulator | None = None,
        site_indices: tuple[int, ...] | None = None,
    ) -> None:
        self.spec = spec or ScaleSpec()
        self.sim = sim or Simulator()
        self.streams = RngStreams(self.spec.seed)
        self.network = Network(
            self.sim, streams=self.streams, backbone_latency=self.spec.backbone_latency
        )
        if site_indices is None:
            site_indices = tuple(range(1, self.spec.n_sites + 1))
        else:
            bad = [i for i in site_indices if not 1 <= i <= self.spec.n_sites]
            if bad:
                raise ValueError(f"site indices out of range 1..{self.spec.n_sites}: {bad}")
        self.site_indices = tuple(site_indices)

        self.source_site: Site | None = None
        self.sender: LbrmSender | None = None
        self.source_node: SimNode | None = None
        self.primary: LogServer | None = None
        self.primary_node: SimNode | None = None
        self.site_loggers: list[LogServer] = []
        self.site_logger_nodes: list[SimNode] = []
        self.aggregates: list[AggregateSiteReceiver] = []
        self.aggregate_nodes: list[SimNode] = []
        self._build()

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        spec = self.spec
        self.source_site = self.network.add_site(
            "site0", lan_latency=spec.lan_latency, tail_latency=spec.tail_latency
        )
        source_host = self.network.add_host("source", self.source_site)
        primary_host = self.network.add_host("primary", self.source_site)

        self.primary = LogServer(
            spec.group,
            addr_token="primary",
            config=spec.config,
            role=LoggerRole.PRIMARY,
            source="source",
            parent="source",
            level=0,
        )
        self.primary_node = SimNode(self.network, primary_host, [self.primary])

        self.sender = LbrmSender(
            spec.group,
            spec.config,
            primary="primary",
            enable_statack=False,
            addr_token="source",
            rng=self.streams.stream("sender"),
        )
        self.source_node = SimNode(self.network, source_host, [self.sender])

        threshold = spec.config.logger.remulticast_threshold
        for i in self.site_indices:
            site_name = f"site{i}"
            shared = None
            if spec.shared_loss > 0.0:
                shared = BernoulliLoss(
                    spec.shared_loss,
                    rng=self.streams.stream(f"loss:{site_name}.tail.down"),
                )
            site = self.network.add_site(
                site_name,
                lan_latency=spec.lan_latency,
                tail_latency=spec.tail_latency,
                tail_loss_down=shared,
            )
            logger_name = f"{site_name}-logger"
            logger_host = self.network.add_host(logger_name, site)
            logger = LogServer(
                spec.group,
                addr_token=logger_name,
                config=spec.config,
                role=LoggerRole.SECONDARY,
                parent="primary",
                source="source",
                level=1,
                rng=self.streams.stream(f"logger:{logger_name}"),
            )
            self.site_loggers.append(logger)
            self.site_logger_nodes.append(SimNode(self.network, logger_host, [logger]))

            agg_name = f"{site_name}-agg"
            agg_host = self.network.add_host(
                agg_name, site, represents=spec.receivers_per_site
            )
            aggregate = AggregateSiteReceiver(
                spec.group,
                spec.receivers_per_site,
                spec.receiver_loss,
                self.streams.stream(f"site:{site_name}:agg"),
                config=spec.config.receiver,
                logger_chain=(logger_name, "primary"),
                heartbeat=spec.config.heartbeat,
                remulticast_threshold=threshold,
                node_name=agg_name,
            )
            self.aggregates.append(aggregate)
            self.aggregate_nodes.append(SimNode(self.network, agg_host, [aggregate]))

    # -- operation ----------------------------------------------------------

    def start(self) -> None:
        for node in self.all_nodes():
            node.start()

    def all_nodes(self) -> list[SimNode]:
        nodes: list[SimNode] = []
        if self.primary_node is not None:
            nodes.append(self.primary_node)
        nodes.extend(self.site_logger_nodes)
        nodes.extend(self.aggregate_nodes)
        if self.source_node is not None:
            nodes.append(self.source_node)
        return nodes

    def send(self, payload: bytes) -> int:
        assert self.sender is not None and self.source_node is not None
        self.source_node.send_app(self.sender, payload)
        return self.sender.seq

    def advance(self, dt: float) -> None:
        self.sim.run_until(self.sim.now + dt)

    def advance_to(self, t: float) -> None:
        """Run the simulation to absolute time ``t`` (barrier step)."""
        self.sim.run_until(t)

    # -- experiment hooks ----------------------------------------------------

    def burst_site(self, site_name: str, duration: float, start: float | None = None) -> None:
        """Drop everything entering ``site_name`` for ``duration`` seconds
        (Figure 1's congested-tail-circuit event), by default starting now."""
        from repro.simnet.loss import BurstLoss

        begin = self.sim.now if start is None else start
        site = self.network.site(site_name)
        site.tail_down.loss = BurstLoss([(begin, begin + duration)], base=site.tail_down.loss)

    def outstanding(self) -> int:
        """Modeled receivers still missing at least one packet."""
        return sum(agg.outstanding for agg in self.aggregates)

    def site_digests(self) -> dict[str, dict]:
        """Per-site deterministic summaries, keyed by site name."""
        return {
            f"site{i}": agg.digest()
            for i, agg in zip(self.site_indices, self.aggregates)
        }

    def hub_stats(self) -> dict:
        """Hub-side counters (primary log service + sender)."""
        assert self.primary is not None and self.sender is not None
        return {
            "primary": dict(self.primary.stats),
            "sender_seq": self.sender.seq,
        }
