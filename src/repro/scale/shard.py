"""Sharded execution of aggregate-scale deployments.

Partitions receiver sites across worker processes and runs them in
lockstep time windows.  The partitioning leans on LBRM's site locality:

* receiver sites never talk to each other — every protocol exchange is
  site ↔ hub (the source's multicast + the primary's unicast repairs);
* the hub's outbound schedule is receiver-independent (statistical
  acknowledgement off, heartbeats driven by the send timeline), and the
  primary answers each repair requester by unicast, so one site's
  losses never change what another site receives;
* every RNG stream is name-derived (:mod:`repro.scale.deploy`), so a
  site draws identical randomness whichever worker owns it.

Each worker therefore builds the *same hub* plus its own subset of
sites (round-robin by site index) and the merged run is exactly the
unsharded run: per-site outputs are byte-identical for any shard count
(``test_shard.py`` holds us to that).

Synchronization is conservative time windows: the barrier quantum is
the cross-site one-way latency (``ScaleSpec.wan_one_way``) — the
minimum time any event at one site needs to influence another site or
the hub — so no worker can run far enough ahead to observe an effect
before its cause.  With the hub replicated the windows are not needed
for *correctness* (no cross-worker messages exist to miss), but they
keep workers in lockstep, bound skew, and give the parent a natural
heartbeat for crash detection: at every barrier it waits on each
worker's pipe **and** its process sentinel, so a dead worker surfaces
as :class:`ShardWorkerError` instead of a hang.

Counters merge at the end: per-site digests and trace events are
disjoint unions; hub *service* counters (NACKs fielded, repairs sent)
sum across shards — each shard's replicated primary served exactly its
own sites; hub *stream* counters (packets logged, sequence reached) are
identical in every shard and are taken from shard 0.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import resource
import time
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Connection, wait as conn_wait

from repro.scale.deploy import AggregateDeployment, ScaleSpec

__all__ = [
    "ScaleScenario",
    "ShardWorkerError",
    "ShardReport",
    "run_sharded",
    "protocol_digest",
    "trace_bytes",
]

# Hub counters served per-site (sum across shards) vs. per-stream
# (identical in every shard; take shard 0's copy).
_HUB_SUMMED = ("nacks_received", "retrans_unicast", "retrans_multicast", "log_misses")


@dataclass(frozen=True)
class ScaleScenario:
    """A declarative scale run: workload timeline + fault schedule.

    The timeline is owned by the scenario (not poked in by the caller)
    so every worker can replay it independently: ``n_packets`` data
    multicasts ``interval`` apart starting at ``warmup``, then ``drain``
    seconds of recovery time.  ``bursts`` schedules tail-circuit
    outages as ``(start, site_index, duration)`` triples.
    """

    spec: ScaleSpec = field(default_factory=ScaleSpec)
    n_packets: int = 50
    interval: float = 0.02
    payload_size: int = 64
    warmup: float = 0.2
    drain: float = 2.0
    bursts: tuple[tuple[float, int, float], ...] = ()
    # Test hooks for the parent's crash-vs-hang handling.  The named
    # shard calls os._exit at its first barrier (mid-window death),
    # dies on receiving ("finish",) instead of reporting (death during
    # the barrier merge), or reports and then refuses to exit
    # (exercises the post-report join timeout).
    debug_crash_shard: int | None = None
    debug_crash_at_finish: int | None = None
    debug_hang_at_exit: int | None = None

    @property
    def end_time(self) -> float:
        return self.warmup + self.n_packets * self.interval + self.drain


class ShardWorkerError(RuntimeError):
    """A worker died or stopped responding; the run was torn down."""


@dataclass
class ShardReport:
    """Merged outcome of a (possibly sharded) scale run."""

    n_shards: int
    seed: int
    population: dict
    sites: dict
    hub: dict
    totals: dict
    trace: list
    sim_events: int
    wall_s: float
    peak_rss_kb: dict

    def to_json(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "seed": self.seed,
            "population": self.population,
            "sites": self.sites,
            "hub": self.hub,
            "totals": self.totals,
            "trace": self.trace,
            "sim_events": self.sim_events,
            "wall_s": self.wall_s,
            "peak_rss_kb": self.peak_rss_kb,
        }


def _shard_sites(n_sites: int, shard: int, n_shards: int) -> tuple[int, ...]:
    """Round-robin site assignment: site i belongs to shard (i-1) % n."""
    return tuple(i for i in range(1, n_sites + 1) if (i - 1) % n_shards == shard)


class _ShardRun:
    """One worker's view of the run: the hub plus its assigned sites.

    Also used directly (``inline=True``) for single-process execution —
    the multiprocessing worker is a thin pipe-protocol wrapper around
    this class, so sharded and inline runs share one code path.
    """

    def __init__(self, scenario: ScaleScenario, shard: int, n_shards: int) -> None:
        self.scenario = scenario
        self.shard = shard
        self.deployment = AggregateDeployment(
            scenario.spec,
            site_indices=_shard_sites(scenario.spec.n_sites, shard, n_shards),
        )
        owned = set(self.deployment.site_indices)
        for start, site_index, duration in scenario.bursts:
            if site_index in owned:
                self.deployment.burst_site(f"site{site_index}", duration, start=start)
        self.deployment.start()
        self._payload = b"x" * scenario.payload_size
        self._next_send = 0

    def advance_to(self, t: float) -> None:
        """Run to absolute time ``t``, firing timeline sends on the way."""
        scenario = self.scenario
        dep = self.deployment
        while self._next_send < scenario.n_packets:
            due = scenario.warmup + self._next_send * scenario.interval
            if due > t:
                break
            dep.advance_to(due)
            dep.send(self._payload)
            self._next_send += 1
        dep.advance_to(t)

    def report(self) -> dict:
        dep = self.deployment
        return {
            "shard": self.shard,
            "sites": dep.site_digests(),
            "hub": dep.hub_stats(),
            "population": dep.network.modeled_stats(),
            "sim_events": dep.sim.processed,
            "outstanding": dep.outstanding(),
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }


def _worker_main(conn: Connection, scenario: ScaleScenario, shard: int, n_shards: int) -> None:
    """Pipe protocol: ("advance", t) → ("at", t); ("finish",) → ("report", …)."""
    import os

    try:
        run = _ShardRun(scenario, shard, n_shards)
        conn.send(("ready", shard))
        while True:
            msg = conn.recv()
            if msg[0] == "advance":
                if scenario.debug_crash_shard == shard:
                    os._exit(3)
                run.advance_to(msg[1])
                conn.send(("at", msg[1]))
            elif msg[0] == "finish":
                if scenario.debug_crash_at_finish == shard:
                    os._exit(3)
                conn.send(("report", run.report()))
                if scenario.debug_hang_at_exit == shard:
                    while True:  # pragma: no branch - killed by the parent
                        time.sleep(60)
                return
            else:  # pragma: no cover - protocol future-proofing
                raise RuntimeError(f"unknown shard message {msg!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    except Exception as exc:  # surface the traceback, then die non-zero
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:  # pragma: no cover - pipe already closed
            pass
        os._exit(1)


def _post(conn: Connection, proc, payload, what: str) -> None:
    """Send one command to a worker, failing cleanly if it already died.

    A worker that exited between barriers closes its pipe end, so the
    parent's next ``send`` raises ``BrokenPipeError`` — surface that as
    :class:`ShardWorkerError` (with the exit code) instead of letting a
    raw OSError escape the run.
    """
    try:
        conn.send(payload)
    except OSError as exc:
        proc.join(timeout=5.0)
        raise ShardWorkerError(
            f"shard worker pipe closed (exit code {proc.exitcode}) during {what}"
        ) from exc


def _await(conn: Connection, proc, timeout: float, what: str):
    """Receive one message from a worker, failing cleanly on death/hang."""
    ready = conn_wait([conn, proc.sentinel], timeout=timeout)
    if conn in ready:
        try:
            msg = conn.recv()
        except EOFError:
            # A dying worker closes its pipe end, which makes the
            # connection "readable" before the process sentinel fires —
            # EOF here IS the death notification, not a protocol error.
            proc.join(timeout=5.0)
            raise ShardWorkerError(
                f"shard worker exited (code {proc.exitcode}) during {what}"
            ) from None
        if msg[0] == "error":
            raise ShardWorkerError(f"shard worker failed during {what}: {msg[1]}")
        return msg
    if proc.sentinel in ready:
        raise ShardWorkerError(
            f"shard worker exited (code {proc.exitcode}) during {what}"
        )
    raise ShardWorkerError(f"shard worker unresponsive for {timeout}s during {what}")


def _merge(scenario: ScaleScenario, reports: list[dict], n_shards: int,
           wall_s: float, parent_rss: int | None) -> ShardReport:
    reports = sorted(reports, key=lambda r: r["shard"])
    sites: dict = {}
    for rep in reports:
        sites.update(rep["sites"])
    # Deterministic site order regardless of which shard reported first.
    sites = {name: sites[name] for name in sorted(sites, key=lambda s: int(s[4:]))}

    hub0 = reports[0]["hub"]
    primary = dict(hub0["primary"])
    for rep in reports[1:]:
        for key in _HUB_SUMMED:
            primary[key] += rep["hub"]["primary"][key]
    hub = {"primary": primary, "sender_seq": hub0["sender_seq"]}

    totals: dict = {}
    for digest in sites.values():
        for key, value in digest["stats"].items():
            totals[key] = totals.get(key, 0) + value
    totals["outstanding"] = sum(rep["outstanding"] for rep in reports)

    trace = sorted(
        (t, name, kind, seq, count)
        for name, digest in sites.items()
        for (t, kind, seq, count) in digest["events"]
    )

    population = dict(reports[0]["population"])
    per_site: dict[str, int] = {}
    modeled = 0
    n_hosts = 0
    for rep in reports:
        pop = rep["population"]
        per_site.update(pop["per_site"])
        modeled += pop["modeled_population"]
        n_hosts += pop["hosts"]
    if n_shards > 1:
        # Each shard replicates the 2-host hub; count it once.
        hub_pop = sum(per_site[s] for s in ("site0",)) if "site0" in per_site else 0
        modeled -= (n_shards - 1) * hub_pop
        n_hosts -= (n_shards - 1) * 2
    population = {
        "hosts": n_hosts,
        "modeled_population": modeled,
        "per_site": {k: per_site[k] for k in sorted(per_site, key=lambda s: int(s[4:]))},
    }

    rss = {"workers": [rep["peak_rss_kb"] for rep in reports]}
    if parent_rss is not None:
        rss["parent"] = parent_rss
    rss["max"] = max(rss["workers"] + ([parent_rss] if parent_rss else []))

    return ShardReport(
        n_shards=n_shards,
        seed=scenario.spec.seed,
        population=population,
        sites=sites,
        hub=hub,
        totals=totals,
        trace=trace,
        sim_events=sum(rep["sim_events"] for rep in reports),
        wall_s=wall_s,
        peak_rss_kb=rss,
    )


def _barriers(scenario: ScaleScenario, window: float | None) -> list[float]:
    if window is None:
        window = scenario.spec.wan_one_way()
    if window <= 0:
        raise ValueError(f"barrier window must be > 0, got {window}")
    end = scenario.end_time
    times = []
    t = window
    while t < end:
        times.append(t)
        t += window
    times.append(end)
    return times


def run_sharded(
    scenario: ScaleScenario,
    n_shards: int = 1,
    *,
    inline: bool = False,
    window: float | None = None,
    timeout: float = 120.0,
) -> ShardReport:
    """Run ``scenario`` across ``n_shards`` workers and merge the results.

    ``inline=True`` runs every shard sequentially in this process (no
    multiprocessing) — the barrier schedule and merge are identical, so
    tests exercise the full pipeline deterministically and cheaply.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > scenario.spec.n_sites:
        raise ValueError(
            f"n_shards ({n_shards}) exceeds site count ({scenario.spec.n_sites})"
        )
    barriers = _barriers(scenario, window)
    t0 = time.perf_counter()

    if inline:
        runs = [_ShardRun(scenario, shard, n_shards) for shard in range(n_shards)]
        for t in barriers:
            for run in runs:
                run.advance_to(t)
        reports = [run.report() for run in runs]
        return _merge(scenario, reports, n_shards, time.perf_counter() - t0, None)

    # "fork" keeps worker startup cheap and inherits sys.path; fall back
    # to the platform default (spawn) where fork is unavailable.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    conns: list[Connection] = []
    procs = []
    try:
        for shard in range(n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, scenario, shard, n_shards),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        for conn, proc in zip(conns, procs):
            _await(conn, proc, timeout, "startup")
        for t in barriers:
            for conn, proc in zip(conns, procs):
                _post(conn, proc, ("advance", t), f"barrier t={t:.3f}")
            for conn, proc in zip(conns, procs):
                _await(conn, proc, timeout, f"barrier t={t:.3f}")
        for conn, proc in zip(conns, procs):
            _post(conn, proc, ("finish",), "final report")
        reports = []
        for conn, proc in zip(conns, procs):
            reports.append(_await(conn, proc, timeout, "final report")[1])
        for proc in procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                # A worker that reported but won't exit would otherwise
                # be silently terminated below — a hang is a failure.
                raise ShardWorkerError(
                    f"shard worker still alive {timeout}s after its final report"
                )
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in conns:
            conn.close()

    parent_rss = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    return _merge(scenario, reports, n_shards, time.perf_counter() - t0, parent_rss)


# -- determinism probes -------------------------------------------------------


def trace_bytes(report: ShardReport) -> bytes:
    """Canonical serialization of the merged trace (byte-identity tests)."""
    return json.dumps(report.trace, separators=(",", ":")).encode()


def protocol_digest(report: ShardReport) -> str:
    """Hash of every protocol-visible output — invariant across shard
    counts (wall time, RSS, and per-worker accounting are excluded)."""
    visible = {
        "sites": report.sites,
        "hub": report.hub,
        "totals": report.totals,
        "trace": report.trace,
        "population": report.population,
    }
    blob = json.dumps(visible, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()
