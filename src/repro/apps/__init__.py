"""Applications of LBRM (§4): DIS terrain, cache invalidation, stock
quotes, WWW page invalidation (Appendix A), and factory automation."""

from repro.apps.cache import (
    CacheClient,
    InvalidationKind,
    InvalidationMessage,
    InvalidationServer,
    LeaseClient,
)
from repro.apps.factory import AuditLog, MobileMonitor, SensorReading
from repro.apps.ticker import Quote, QuoteBoard, QuoteFeed
from repro.apps.webinval import (
    BrowserClient,
    HttpInvalidationServer,
    WebMessage,
    WebMessageKind,
    make_multicast_comment,
    parse_multicast_comment,
)

__all__ = [
    "CacheClient",
    "InvalidationKind",
    "InvalidationMessage",
    "InvalidationServer",
    "LeaseClient",
    "AuditLog",
    "MobileMonitor",
    "SensorReading",
    "Quote",
    "QuoteBoard",
    "QuoteFeed",
    "BrowserClient",
    "HttpInvalidationServer",
    "WebMessage",
    "WebMessageKind",
    "make_multicast_comment",
    "parse_multicast_comment",
]
