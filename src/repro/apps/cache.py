"""Distributed cache invalidation over LBRM (§4.1, §4.2).

The paper frames dynamic terrain as "a specific case of the distributed
cache update problem" and proposes LBRM as an alternative to leases for
file-cache consistency: clients subscribe to an invalidation channel per
server; losing the channel's heartbeat (FreshnessLost) is the moral
equivalent of a lease expiring, so the client invalidates its whole
cache.

:class:`InvalidationServer` publishes keyed invalidations (optionally
carrying the new value, i.e. cache *refresh*); :class:`CacheClient`
wraps an :class:`~repro.core.receiver.LbrmReceiver` application-side:
feed it the receiver's ``Deliver``/``Notify`` actions and read cached
values back.  :class:`LeaseClient` implements the classic Gray &
Cheriton lease for the comparison benchmark.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

from repro.core.actions import Deliver
from repro.core.events import Event, FreshnessLost, FreshnessRestored

__all__ = [
    "InvalidationKind",
    "InvalidationMessage",
    "InvalidationServer",
    "CacheClient",
    "LeaseClient",
]


class InvalidationKind(IntEnum):
    INVALIDATE = 0  # drop the cached value
    REFRESH = 1  # replace the cached value with the attached one


@dataclass(frozen=True, slots=True)
class InvalidationMessage:
    """Payload format for invalidation channels."""

    kind: InvalidationKind
    key: str
    value: bytes = b""
    version: int = 0

    def encode(self) -> bytes:
        key_raw = self.key.encode("utf-8")
        return (
            struct.pack("!BHQI", int(self.kind), len(key_raw), self.version, len(self.value))
            + key_raw
            + self.value
        )

    @classmethod
    def decode(cls, data: bytes) -> "InvalidationMessage":
        kind, key_len, version, value_len = struct.unpack_from("!BHQI", data, 0)
        offset = struct.calcsize("!BHQI")
        key = data[offset : offset + key_len].decode("utf-8")
        value = data[offset + key_len : offset + key_len + value_len]
        return cls(kind=InvalidationKind(kind), key=key, value=value, version=version)


class InvalidationServer:
    """Server-side state: versions per key and payload construction.

    The transport is whatever LBRM sender the application owns; this
    class only builds the payloads so it stays usable over both simnet
    and asyncio deployments.
    """

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}
        self.stats = {"invalidations": 0, "refreshes": 0}

    def version(self, key: str) -> int:
        return self._versions.get(key, 0)

    def invalidate(self, key: str) -> bytes:
        """Payload announcing that ``key``'s cached copies are stale."""
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        self.stats["invalidations"] += 1
        return InvalidationMessage(InvalidationKind.INVALIDATE, key, version=version).encode()

    def refresh(self, key: str, value: bytes) -> bytes:
        """Payload carrying ``key``'s new value (invalidate + refill)."""
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        self.stats["refreshes"] += 1
        return InvalidationMessage(InvalidationKind.REFRESH, key, value=value, version=version).encode()


class CacheClient:
    """Client cache keeping consistency from an LBRM invalidation channel.

    Wire it to a receiver by passing delivered payloads to
    :meth:`on_deliver` and protocol events to :meth:`on_event`.  On
    FreshnessLost the entire cache is invalidated — "this action occurs
    in time comparable to a lease timeout" (§4.2) but requires none of
    the per-file lease bookkeeping.
    """

    def __init__(self) -> None:
        self._cache: dict[str, bytes] = {}
        self._versions: dict[str, int] = {}
        self._connected = True
        self.stats = {
            "invalidated_keys": 0,
            "refreshed_keys": 0,
            "stale_dropped": 0,
            "full_invalidations": 0,
        }

    @property
    def connected(self) -> bool:
        """False while the channel's freshness guarantee is broken."""
        return self._connected

    def put(self, key: str, value: bytes) -> None:
        """Populate the cache (e.g. after a demand fetch from the server)."""
        self._cache[key] = value

    def get(self, key: str) -> bytes | None:
        """Cached value, or None when absent/invalidated/disconnected."""
        if not self._connected:
            return None
        return self._cache.get(key)

    def __len__(self) -> int:
        return len(self._cache)

    def on_deliver(self, delivery: Deliver) -> None:
        message = InvalidationMessage.decode(delivery.payload)
        if message.version <= self._versions.get(message.key, 0):
            self.stats["stale_dropped"] += 1
            return
        self._versions[message.key] = message.version
        if message.kind is InvalidationKind.REFRESH:
            self._cache[message.key] = message.value
            self.stats["refreshed_keys"] += 1
        else:
            self._cache.pop(message.key, None)
            self.stats["invalidated_keys"] += 1

    def on_event(self, event: Event) -> None:
        if isinstance(event, FreshnessLost):
            # Lease-expiry analogue: everything may be stale now.
            self._connected = False
            self._cache.clear()
            self._versions.clear()
            self.stats["full_invalidations"] += 1
        elif isinstance(event, FreshnessRestored):
            self._connected = True


class LeaseClient:
    """Gray & Cheriton-style leasing comparator (§4.2).

    Each cached key carries a lease expiring ``lease_term`` after grant;
    reading an expired key requires a renewal round-trip to the server.
    The comparison benchmark counts renewal traffic against LBRM's
    single heartbeat channel.
    """

    def __init__(self, lease_term: float = 10.0) -> None:
        if lease_term <= 0:
            raise ValueError(f"lease_term must be positive, got {lease_term}")
        self._term = lease_term
        self._cache: dict[str, bytes] = {}
        self._expiry: dict[str, float] = {}
        self.stats = {"renewals": 0, "expired_reads": 0}

    def put(self, key: str, value: bytes, now: float) -> None:
        self._cache[key] = value
        self._expiry[key] = now + self._term

    def get(self, key: str, now: float) -> bytes | None:
        """Value if the lease is valid; None means a server round-trip."""
        expiry = self._expiry.get(key)
        if expiry is None:
            return None
        if now >= expiry:
            self.stats["expired_reads"] += 1
            return None
        return self._cache.get(key)

    def renew(self, key: str, now: float) -> None:
        """Record a renewal round-trip completing at ``now``."""
        if key in self._cache:
            self.stats["renewals"] += 1
            self._expiry[key] = now + self._term

    def renewals_required(self, n_keys: int, duration: float) -> float:
        """Renewal messages needed to keep ``n_keys`` continuously valid."""
        return n_keys * (duration / self._term)
