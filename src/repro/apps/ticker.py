"""Stock-quote dissemination over LBRM (§4.1).

"Examples of such 'information dissemination' applications arise for
distributing real-time stock quotes to brokers' terminals (and
eventually to the public at large)..."

:class:`QuoteFeed` generates a deterministic geometric-random-walk price
stream per symbol and encodes quotes as LBRM payloads;
:class:`QuoteBoard` is the receiving terminal's book of latest quotes,
tolerant of out-of-order recovery (older quotes never overwrite newer
ones).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass

__all__ = ["Quote", "QuoteFeed", "QuoteBoard"]

_QUOTE = struct.Struct("!H8sQqI")  # symbol len(unused pad), symbol, quote_id, price_cents, size


@dataclass(frozen=True, slots=True)
class Quote:
    """One trade print: symbol, monotone per-symbol id, price, size."""

    symbol: str
    quote_id: int
    price_cents: int
    size: int

    def encode(self) -> bytes:
        raw = self.symbol.encode("ascii")
        if len(raw) > 8:
            raise ValueError(f"symbol too long: {self.symbol!r}")
        return _QUOTE.pack(len(raw), raw.ljust(8, b"\x00"), self.quote_id, self.price_cents, self.size)

    @classmethod
    def decode(cls, data: bytes) -> "Quote":
        length, raw, quote_id, price_cents, size = _QUOTE.unpack(data[: _QUOTE.size])
        return cls(
            symbol=raw[:length].decode("ascii"),
            quote_id=quote_id,
            price_cents=price_cents,
            size=size,
        )


class QuoteFeed:
    """Source-side quote generator (geometric random walk per symbol)."""

    def __init__(
        self,
        symbols: tuple[str, ...] = ("ACME", "GLOBEX", "INITECH"),
        start_price_cents: int = 10_000,
        volatility: float = 0.002,
        rng: random.Random | None = None,
    ) -> None:
        if not symbols:
            raise ValueError("need at least one symbol")
        if volatility < 0:
            raise ValueError(f"volatility must be non-negative, got {volatility}")
        self._rng = rng or random.Random(0)
        self._volatility = volatility
        self._prices: dict[str, float] = {s: float(start_price_cents) for s in symbols}
        self._ids: dict[str, int] = {s: 0 for s in symbols}

    @property
    def symbols(self) -> tuple[str, ...]:
        return tuple(self._prices)

    def tick(self, symbol: str) -> Quote:
        """Advance ``symbol`` one step and return the quote to publish."""
        price = self._prices[symbol]
        price *= 1.0 + self._rng.gauss(0.0, self._volatility)
        price = max(price, 1.0)
        self._prices[symbol] = price
        self._ids[symbol] += 1
        return Quote(
            symbol=symbol,
            quote_id=self._ids[symbol],
            price_cents=int(round(price)),
            size=self._rng.randint(1, 100) * 100,
        )

    def tick_random(self) -> Quote:
        """Advance a uniformly chosen symbol."""
        return self.tick(self._rng.choice(self.symbols))


class QuoteBoard:
    """A broker terminal's latest-quote book.

    Quotes apply only if newer than the held one, so a recovered quote
    that was superseded in flight is dropped (and counted) — the
    receiver-reliable pattern every app in this package shares.
    """

    def __init__(self) -> None:
        self._book: dict[str, Quote] = {}
        self.stats = {"applied": 0, "stale_dropped": 0}

    def apply(self, payload: bytes) -> Quote | None:
        quote = Quote.decode(payload)
        current = self._book.get(quote.symbol)
        if current is not None and current.quote_id >= quote.quote_id:
            self.stats["stale_dropped"] += 1
            return None
        self._book[quote.symbol] = quote
        self.stats["applied"] += 1
        return quote

    def last(self, symbol: str) -> Quote | None:
        return self._book.get(symbol)

    def __len__(self) -> int:
        return len(self._book)
