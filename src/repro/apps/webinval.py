"""WWW page invalidation — the Appendix A protocol, faithfully.

Each HTML file carries a first-line comment naming its invalidation
multicast address::

    <!MULTICAST.234.12.29.72.>

The HTTP server multicasts text messages on that group::

    TRANS:17.0:UPDATE: http://www-DSG.Stanford.EDU/groupMembers.html
    TRANS:17.12:HEARTBEAT
    RETRANS:17.0:UPDATE: http://...

``17`` is the update sequence number, ``12`` the heartbeat index since
that update.  A client that detects a lost update starts "a short
retransmission request timer" (allowing reordering and avoiding NACK
implosion), then asks the server-host logging process for the missing
updates, which replies with RETRANS-tagged messages.

This module provides the exact text codec plus server/browser state
machines.  In this repository the messages ride as LBRM payloads (the
appendix's hand-rolled sequence numbers and heartbeats *are* the LBRM
mechanisms, which is the paper's own observation in §4.3/§7 about
extending the browser "to use the full set of LBRM optimizations"), so
the browser's RELOAD-highlight behaviour is driven by ordinary
``Deliver`` actions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "MULTICAST_COMMENT_RE",
    "parse_multicast_comment",
    "make_multicast_comment",
    "WebMessageKind",
    "WebMessage",
    "HttpInvalidationServer",
    "BrowserClient",
]

MULTICAST_COMMENT_RE = re.compile(r"<!MULTICAST\.(\d+\.\d+\.\d+\.\d+)\.>")


def parse_multicast_comment(html: str) -> str | None:
    """Extract the invalidation group address from an HTML document.

    Only the first line is examined, per the appendix ("a comment in the
    first line").  Returns the dotted-quad string or None.
    """
    first_line, _, _ = html.partition("\n")
    match = MULTICAST_COMMENT_RE.search(first_line)
    return match.group(1) if match else None


def make_multicast_comment(address: str) -> str:
    """Render the first-line comment binding a document to ``address``."""
    if not re.fullmatch(r"\d+\.\d+\.\d+\.\d+", address):
        raise ValueError(f"not a dotted-quad multicast address: {address!r}")
    return f"<!MULTICAST.{address}.>"


class WebMessageKind(Enum):
    UPDATE = "UPDATE"
    HEARTBEAT = "HEARTBEAT"


@dataclass(frozen=True, slots=True)
class WebMessage:
    """One parsed invalidation-protocol message."""

    kind: WebMessageKind
    seq: int
    hb_index: int
    url: str = ""
    retrans: bool = False

    def encode(self) -> str:
        tag = "RETRANS" if self.retrans else "TRANS"
        if self.kind is WebMessageKind.HEARTBEAT:
            return f"{tag}:{self.seq}.{self.hb_index}:HEARTBEAT"
        return f"{tag}:{self.seq}.{self.hb_index}:UPDATE: {self.url}"

    @classmethod
    def decode(cls, text: str) -> "WebMessage":
        match = re.fullmatch(
            r"(TRANS|RETRANS):\s*(\d+)\.(\d+):\s*(UPDATE|HEARTBEAT)(?::\s*(\S+))?",
            text.strip(),
        )
        if match is None:
            raise ValueError(f"malformed invalidation message: {text!r}")
        tag, seq, hb_index, kind, url = match.groups()
        if kind == "UPDATE" and not url:
            raise ValueError(f"UPDATE message without a URL: {text!r}")
        return cls(
            kind=WebMessageKind(kind),
            seq=int(seq),
            hb_index=int(hb_index),
            url=url or "",
            retrans=tag == "RETRANS",
        )


class HttpInvalidationServer:
    """Server side: document store, modification detection, updates.

    ``publish`` registers a document (assigning it the server's group
    address comment); ``modify`` changes its content and returns the
    UPDATE message to multicast.  The update log mirrors what the
    server-host "logging process" serves RETRANS from.
    """

    def __init__(self, group_address: str = "234.12.29.72") -> None:
        self._group_address = group_address
        self._documents: dict[str, str] = {}
        self._seq = 0
        self._update_log: dict[int, WebMessage] = {}
        self.stats = {"updates": 0, "retransmissions": 0}

    @property
    def group_address(self) -> str:
        return self._group_address

    @property
    def seq(self) -> int:
        return self._seq

    def publish(self, url: str, content: str) -> str:
        """Store a document, prepending the multicast comment line."""
        body = f"{make_multicast_comment(self._group_address)}\n{content}"
        self._documents[url] = body
        return body

    def fetch(self, url: str) -> str:
        """Serve the document (the client's RELOAD path)."""
        return self._documents[url]

    def modify(self, url: str, content: str) -> WebMessage:
        """Change a document; returns the UPDATE message to multicast."""
        if url not in self._documents:
            raise KeyError(f"unknown document {url!r}")
        self._documents[url] = f"{make_multicast_comment(self._group_address)}\n{content}"
        self._seq += 1
        self.stats["updates"] += 1
        message = WebMessage(kind=WebMessageKind.UPDATE, seq=self._seq, hb_index=0, url=url)
        self._update_log[self._seq] = message
        return message

    def heartbeat(self, hb_index: int) -> WebMessage:
        """The idle-channel keep-alive (TRANS:seq.N:HEARTBEAT)."""
        return WebMessage(kind=WebMessageKind.HEARTBEAT, seq=self._seq, hb_index=hb_index)

    def retransmit(self, seqs: list[int]) -> list[WebMessage]:
        """The logging process answering a client's request for misses."""
        replies: list[WebMessage] = []
        for seq in seqs:
            original = self._update_log.get(seq)
            if original is None:
                continue
            self.stats["retransmissions"] += 1
            replies.append(
                WebMessage(
                    kind=original.kind,
                    seq=original.seq,
                    hb_index=original.hb_index,
                    url=original.url,
                    retrans=True,
                )
            )
        return replies


class BrowserClient:
    """Mosaic-side cache with RELOAD-button highlighting.

    "When an update packet arrives, the client sets an invalidation flag
    for the associated cached page.  This flag determines whether to
    highlight the RELOAD button ... cleared when the document has been
    reloaded from the server."
    """

    def __init__(self) -> None:
        self._cache: dict[str, str] = {}
        self._invalid: set[str] = set()
        self._subscriptions: set[str] = set()
        self.stats = {"invalidations": 0, "reloads": 0}

    @property
    def subscriptions(self) -> frozenset[str]:
        """Multicast addresses this browser currently subscribes to."""
        return frozenset(self._subscriptions)

    def display(self, url: str, html: str) -> str | None:
        """Cache and display a fetched page; subscribe per its comment.

        Returns the multicast address newly subscribed to (or None).
        """
        self._cache[url] = html
        self._invalid.discard(url)
        address = parse_multicast_comment(html)
        if address is not None and address not in self._subscriptions:
            self._subscriptions.add(address)
            return address
        return None

    def evict(self, url: str) -> None:
        """Drop a page from the cache (subscription retention is per the
        appendix tied to cache residency; callers unsubscribe when no
        cached page uses an address)."""
        self._cache.pop(url, None)
        self._invalid.discard(url)

    def cached(self, url: str) -> str | None:
        return self._cache.get(url)

    def needs_reload(self, url: str) -> bool:
        """True when the RELOAD button is highlighted for ``url``."""
        return url in self._invalid

    def on_message(self, message: WebMessage) -> bool:
        """Apply a received invalidation message.

        Returns True when a cached page was newly invalidated.
        """
        if message.kind is not WebMessageKind.UPDATE:
            return False
        if message.url in self._cache and message.url not in self._invalid:
            self._invalid.add(message.url)
            self.stats["invalidations"] += 1
            return True
        return False

    def reload(self, url: str, html: str) -> None:
        """The user pressed RELOAD: refresh the cache, clear the flag."""
        self._cache[url] = html
        self._invalid.discard(url)
        self.stats["reloads"] += 1
