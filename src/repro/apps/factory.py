"""Factory automation over LBRM (§4.4).

Three properties the paper claims make LBRM a fit for factory floors:

* **record-keeping for free** — the logging server already stores every
  transaction, so an auditor can replay history from the log;
* **dynamic reconfiguration** — no receiver lists at sources, so
  monitoring stations attach and detach without connection setup;
* **intermittent connectivity** — a mobile monitor that reconnects
  recovers the gap from a logging server "without interfering with the
  other receivers or affecting the on-going data flow".

:class:`SensorReading` is the payload format; :class:`AuditLog` replays
a :class:`~repro.core.log_store.PacketLog` into an ordered ledger;
:class:`MobileMonitor` models the disconnect/reconnect cycle around an
:class:`~repro.core.receiver.LbrmReceiver`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.log_store import PacketLog

__all__ = ["SensorReading", "AuditLog", "MobileMonitor"]

_READING = struct.Struct("!I8sdQ")


@dataclass(frozen=True, slots=True)
class SensorReading:
    """One sensor sample: sensor id, metric name, value, sample index."""

    sensor_id: int
    metric: str
    value: float
    sample: int

    def encode(self) -> bytes:
        raw = self.metric.encode("ascii")
        if len(raw) > 8:
            raise ValueError(f"metric name too long: {self.metric!r}")
        return _READING.pack(self.sensor_id, raw.ljust(8, b"\x00"), self.value, self.sample)

    @classmethod
    def decode(cls, data: bytes) -> "SensorReading":
        sensor_id, raw, value, sample = _READING.unpack(data[: _READING.size])
        return cls(
            sensor_id=sensor_id,
            metric=raw.rstrip(b"\x00").decode("ascii"),
            value=value,
            sample=sample,
        )


class AuditLog:
    """Replays a logging server's packet log as an ordered ledger.

    This is the "accurate record-keeping" story: the audit trail is a
    *by-product* of the reliability mechanism, not a separate system.
    """

    def __init__(self, log: PacketLog) -> None:
        self._log = log

    def replay(self, from_seq: int = 1, to_seq: int | None = None) -> list[SensorReading]:
        """Decode every logged reading in ``[from_seq, to_seq]`` order.

        Sequences missing from the log (expired or never received) are
        skipped — the ledger is as complete as the retention policy.
        """
        high = to_seq if to_seq is not None else (self._log.highest or 0)
        readings: list[SensorReading] = []
        for seq in range(from_seq, high + 1):
            if seq not in self._log:
                continue
            entry = self._log.get(seq)
            readings.append(SensorReading.decode(entry.payload))
        return readings

    def history(self, sensor_id: int) -> list[SensorReading]:
        """All logged samples for one sensor, oldest first."""
        return [r for r in self.replay() if r.sensor_id == sensor_id]


class MobileMonitor:
    """A handheld monitor with intermittent connectivity.

    Tracks the latest reading per sensor from delivered payloads and
    records disconnect windows; on reconnect, the LBRM receiver's normal
    gap recovery backfills everything missed, and :meth:`gap_recovered`
    reports how many backfilled samples arrived.
    """

    def __init__(self) -> None:
        self._latest: dict[int, SensorReading] = {}
        self._disconnected = False
        self.stats = {"live_samples": 0, "recovered_samples": 0, "disconnects": 0}

    @property
    def disconnected(self) -> bool:
        return self._disconnected

    def disconnect(self) -> None:
        """Walk out of radio range."""
        if not self._disconnected:
            self._disconnected = True
            self.stats["disconnects"] += 1

    def reconnect(self) -> None:
        self._disconnected = False

    def on_deliver(self, payload: bytes, recovered: bool) -> SensorReading | None:
        """Apply a delivered reading; stale (superseded) samples dropped."""
        reading = SensorReading.decode(payload)
        current = self._latest.get(reading.sensor_id)
        if recovered:
            self.stats["recovered_samples"] += 1
        else:
            self.stats["live_samples"] += 1
        if current is not None and current.sample >= reading.sample:
            return None
        self._latest[reading.sensor_id] = reading
        return reading

    def latest(self, sensor_id: int) -> SensorReading | None:
        return self._latest.get(sensor_id)
