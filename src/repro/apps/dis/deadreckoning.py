"""Dead reckoning for dynamic DIS entities (§1, reference [17]).

"Dead reckoning at each receiver dramatically reduces the bandwidth
demands of dynamic entities" — each receiver extrapolates an entity's
last broadcast kinematic state, and the source transmits a fresh state
only when its true position diverges from what the receivers are
extrapolating by more than an error threshold.

This module supplies that mechanism for the DIS workload: a
:class:`KinematicState` wire format, the source-side
:class:`DeadReckoningSource` emission policy, and the receiver-side
:class:`DeadReckoningMirror` extrapolator whose display error is bounded
by the source's threshold (plus network delay × speed).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

__all__ = ["KinematicState", "DeadReckoningSource", "DeadReckoningMirror"]

_KINEMATIC = struct.Struct("!IdddddQ")


@dataclass(frozen=True, slots=True)
class KinematicState:
    """A dynamic entity's broadcast state: pose, velocity, timestamp."""

    entity_id: int
    x: float
    y: float
    vx: float
    vy: float
    timestamp: float
    update_id: int = 0

    def extrapolate(self, now: float) -> tuple[float, float]:
        """First-order dead-reckoned position at time ``now``."""
        dt = now - self.timestamp
        return self.x + self.vx * dt, self.y + self.vy * dt

    def encode(self) -> bytes:
        return _KINEMATIC.pack(
            self.entity_id, self.x, self.y, self.vx, self.vy, self.timestamp, self.update_id
        )

    @classmethod
    def decode(cls, data: bytes) -> "KinematicState":
        entity_id, x, y, vx, vy, timestamp, update_id = _KINEMATIC.unpack(
            data[: _KINEMATIC.size]
        )
        return cls(entity_id=entity_id, x=x, y=y, vx=vx, vy=vy,
                   timestamp=timestamp, update_id=update_id)


class DeadReckoningSource:
    """Source-side emission policy for one dynamic entity.

    Call :meth:`move` with the entity's true state every tick; it
    returns the :class:`KinematicState` to broadcast when the receivers'
    extrapolation error would exceed ``threshold``, else ``None``.
    ``max_silence`` bounds the time between updates regardless (DIS
    keeps a periodic floor so late joiners converge).
    """

    def __init__(self, entity_id: int, threshold: float = 1.0, max_silence: float = 5.0) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if max_silence <= 0:
            raise ValueError(f"max_silence must be positive, got {max_silence}")
        self._entity_id = entity_id
        self._threshold = threshold
        self._max_silence = max_silence
        self._last_broadcast: KinematicState | None = None
        self._update_id = 0
        self.stats = {"moves": 0, "updates_emitted": 0}

    @property
    def last_broadcast(self) -> KinematicState | None:
        return self._last_broadcast

    def move(self, x: float, y: float, vx: float, vy: float, now: float) -> KinematicState | None:
        """Report the entity's true state; returns an update to send or None."""
        self.stats["moves"] += 1
        last = self._last_broadcast
        if last is not None:
            ex, ey = last.extrapolate(now)
            error = math.hypot(x - ex, y - ey)
            if error <= self._threshold and now - last.timestamp < self._max_silence:
                return None
        self._update_id += 1
        state = KinematicState(
            entity_id=self._entity_id, x=x, y=y, vx=vx, vy=vy,
            timestamp=now, update_id=self._update_id,
        )
        self._last_broadcast = state
        self.stats["updates_emitted"] += 1
        return state


class DeadReckoningMirror:
    """Receiver-side extrapolated view of many dynamic entities.

    Stale updates (recovered after being superseded) are dropped by
    ``update_id`` — the same receiver-reliable pattern as the terrain
    database.
    """

    def __init__(self) -> None:
        self._states: dict[int, KinematicState] = {}
        self.stats = {"applied": 0, "stale_dropped": 0}

    def apply(self, payload: bytes) -> KinematicState | None:
        state = KinematicState.decode(payload)
        current = self._states.get(state.entity_id)
        if current is not None and current.update_id >= state.update_id:
            self.stats["stale_dropped"] += 1
            return None
        self._states[state.entity_id] = state
        self.stats["applied"] += 1
        return state

    def position(self, entity_id: int, now: float) -> tuple[float, float] | None:
        """The dead-reckoned position displayed for ``entity_id``."""
        state = self._states.get(entity_id)
        if state is None:
            return None
        return state.extrapolate(now)

    def __len__(self) -> int:
        return len(self._states)
