"""DIS terrain entities — the paper's motivating workload (§1, §2.1.2).

Terrain entities (bridges, trees, fences, buildings) are "completely
static for some considerable length of time", then change state — the
destroyed bridge every tank must see within a fraction of a second.
:class:`TerrainEntity` models one such entity: a small state record with
a version, serialized into LBRM data payloads.  :class:`TerrainDatabase`
is the receiver-side cache of entity states, applying updates as they
are delivered (including out-of-order recoveries, which are dropped when
superseded — receiver-reliable semantics at work).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

__all__ = ["TerrainKind", "TerrainState", "TerrainEntity", "TerrainDatabase"]


class TerrainKind(IntEnum):
    """Aggregate terrain entity categories from the paper's scenario."""

    ROCK = 0
    TREE = 1
    FENCE = 2
    BRIDGE = 3
    BUILDING = 4


_STATE = struct.Struct("!IBBddd")  # entity_id, kind, condition, x, y, version-as-double? no:
_STATE = struct.Struct("!IBBQddd")  # entity_id, kind, condition, version, x, y, heading


@dataclass(frozen=True, slots=True)
class TerrainState:
    """One versioned snapshot of a terrain entity.

    ``condition`` is 0–255 (255 = intact, 0 = destroyed); ``version``
    increases with every state change so receivers can discard stale
    recoveries.
    """

    entity_id: int
    kind: TerrainKind
    condition: int
    version: int
    x: float
    y: float
    heading: float = 0.0

    def encode(self) -> bytes:
        """Serialize for an LBRM data payload."""
        return _STATE.pack(
            self.entity_id, int(self.kind), self.condition, self.version, self.x, self.y, self.heading
        )

    @classmethod
    def decode(cls, data: bytes) -> "TerrainState":
        entity_id, kind, condition, version, x, y, heading = _STATE.unpack(data[: _STATE.size])
        return cls(
            entity_id=entity_id,
            kind=TerrainKind(kind),
            condition=condition,
            version=version,
            x=x,
            y=y,
            heading=heading,
        )


class TerrainEntity:
    """Source-side entity: owns the authoritative state and its version."""

    def __init__(self, entity_id: int, kind: TerrainKind, x: float, y: float) -> None:
        self._state = TerrainState(
            entity_id=entity_id, kind=kind, condition=255, version=1, x=x, y=y
        )

    @property
    def state(self) -> TerrainState:
        return self._state

    @property
    def entity_id(self) -> int:
        return self._state.entity_id

    def damage(self, amount: int) -> TerrainState:
        """Apply damage; returns the new state to disseminate."""
        condition = max(0, self._state.condition - amount)
        return self._mutate(condition=condition)

    def destroy(self) -> TerrainState:
        """The destroyed-bridge event: condition drops to zero."""
        return self._mutate(condition=0)

    def repair(self) -> TerrainState:
        return self._mutate(condition=255)

    def _mutate(self, **changes) -> TerrainState:
        current = self._state
        self._state = TerrainState(
            entity_id=current.entity_id,
            kind=current.kind,
            condition=changes.get("condition", current.condition),
            version=current.version + 1,
            x=changes.get("x", current.x),
            y=changes.get("y", current.y),
            heading=changes.get("heading", current.heading),
        )
        return self._state


class TerrainDatabase:
    """Receiver-side cache of terrain states (one per entity).

    ``apply`` enforces version monotonicity: a recovered update that was
    superseded while it was being retransmitted is dropped — the paper's
    receiver-reliable argument that late data may be worthless to a
    real-time application.
    """

    def __init__(self) -> None:
        self._states: dict[int, TerrainState] = {}
        self.stats = {"applied": 0, "stale_dropped": 0}

    def apply(self, payload: bytes) -> TerrainState | None:
        """Apply a delivered update; returns the new state or None if stale."""
        state = TerrainState.decode(payload)
        current = self._states.get(state.entity_id)
        if current is not None and current.version >= state.version:
            self.stats["stale_dropped"] += 1
            return None
        self._states[state.entity_id] = state
        self.stats["applied"] += 1
        return state

    def get(self, entity_id: int) -> TerrainState | None:
        return self._states.get(entity_id)

    def __len__(self) -> int:
        return len(self._states)

    def destroyed(self) -> list[int]:
        """Entity ids currently known destroyed (condition 0)."""
        return sorted(eid for eid, s in self._states.items() if s.condition == 0)
