"""STOW-scale DIS scenario generation and bandwidth accounting (§2.1.2).

The paper's scenario: "100,000 dynamic entities (tanks, planes, ships,
infantry), and an equal number of aggregate terrain entities"; dynamic
entities average one packet per second, terrain entities change state
"once every two minutes" but need 1/4-second freshness.  Under a fixed
heartbeat the terrain heartbeats alone are 400,000 packets/second — 4/5
of the whole simulation's traffic; the variable heartbeat removes almost
all of it.

:func:`scenario_packet_rates` computes that arithmetic exactly (the §2.1.2
narrative numbers), and :class:`DisScenario` draws a concrete entity
population with exponential update processes for event-driven simulation
at a scaled-down size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.analysis.heartbeat_math import fixed_rate, variable_rate
from repro.core.config import HeartbeatConfig
from repro.apps.dis.terrain import TerrainEntity, TerrainKind

__all__ = ["ScenarioRates", "scenario_packet_rates", "DisScenario"]


@dataclass(frozen=True, slots=True)
class ScenarioRates:
    """Aggregate packet rates (packets/second) for one DIS scenario."""

    dynamic_data: float
    terrain_data: float
    terrain_heartbeats_fixed: float
    terrain_heartbeats_variable: float

    @property
    def total_fixed(self) -> float:
        """Total simulation traffic under the fixed heartbeat scheme."""
        return self.dynamic_data + self.terrain_data + self.terrain_heartbeats_fixed

    @property
    def total_variable(self) -> float:
        """Total traffic with the variable heartbeat scheme."""
        return self.dynamic_data + self.terrain_data + self.terrain_heartbeats_variable

    @property
    def heartbeat_fraction_fixed(self) -> float:
        """Share of all traffic that is terrain heartbeats, fixed scheme.

        The paper's "4/5 of the simulation's 500,000 packets per second".
        """
        return self.terrain_heartbeats_fixed / self.total_fixed

    @property
    def heartbeat_reduction(self) -> float:
        """Fixed/variable terrain-heartbeat ratio (the ~50× headline)."""
        if self.terrain_heartbeats_variable == 0:
            return math.inf
        return self.terrain_heartbeats_fixed / self.terrain_heartbeats_variable


def scenario_packet_rates(
    n_dynamic: int = 100_000,
    n_terrain: int = 100_000,
    dynamic_interval: float = 1.0,
    terrain_interval: float = 120.0,
    heartbeat: HeartbeatConfig | None = None,
) -> ScenarioRates:
    """The §2.1.2 scenario arithmetic for arbitrary populations."""
    cfg = heartbeat or HeartbeatConfig()
    return ScenarioRates(
        dynamic_data=n_dynamic / dynamic_interval,
        terrain_data=n_terrain / terrain_interval,
        terrain_heartbeats_fixed=n_terrain * fixed_rate(terrain_interval, cfg.h_min),
        terrain_heartbeats_variable=n_terrain * variable_rate(terrain_interval, cfg),
    )


_KIND_WEIGHTS = [
    (TerrainKind.ROCK, 0.30),
    (TerrainKind.TREE, 0.40),
    (TerrainKind.FENCE, 0.15),
    (TerrainKind.BRIDGE, 0.05),
    (TerrainKind.BUILDING, 0.10),
]


@dataclass
class ScheduledUpdate:
    """One future state change drawn by the scenario generator."""

    time: float
    entity_id: int


class DisScenario:
    """A concrete (scaled-down) entity population with update schedules.

    Terrain entities change state as independent Poisson processes with
    mean interval ``terrain_interval``.  ``draw_updates`` produces the
    time-ordered state-change schedule a simulation run replays through
    LBRM senders.
    """

    def __init__(
        self,
        n_terrain: int = 200,
        terrain_interval: float = 120.0,
        area: float = 10_000.0,
        rng: random.Random | None = None,
    ) -> None:
        if n_terrain < 1:
            raise ValueError(f"need at least one entity, got {n_terrain}")
        self._rng = rng or random.Random(0)
        self._interval = terrain_interval
        self.entities: dict[int, TerrainEntity] = {}
        kinds = [k for k, _ in _KIND_WEIGHTS]
        weights = [w for _, w in _KIND_WEIGHTS]
        for entity_id in range(1, n_terrain + 1):
            kind = self._rng.choices(kinds, weights=weights)[0]
            x = self._rng.uniform(0, area)
            y = self._rng.uniform(0, area)
            self.entities[entity_id] = TerrainEntity(entity_id, kind, x, y)

    def bridges(self) -> list[TerrainEntity]:
        """All bridge entities (the motivating example's protagonists)."""
        return [e for e in self.entities.values() if e.state.kind is TerrainKind.BRIDGE]

    def draw_updates(self, duration: float) -> list[ScheduledUpdate]:
        """Sample every entity's Poisson update times within ``duration``."""
        updates: list[ScheduledUpdate] = []
        for entity_id in self.entities:
            t = self._rng.expovariate(1.0 / self._interval)
            while t < duration:
                updates.append(ScheduledUpdate(time=t, entity_id=entity_id))
                t += self._rng.expovariate(1.0 / self._interval)
        updates.sort(key=lambda u: u.time)
        return updates
