"""Distributed Interactive Simulation terrain workload (§1, §2.1.2)."""

from repro.apps.dis.deadreckoning import (
    DeadReckoningMirror,
    DeadReckoningSource,
    KinematicState,
)
from repro.apps.dis.scenario import (
    DisScenario,
    ScenarioRates,
    ScheduledUpdate,
    scenario_packet_rates,
)
from repro.apps.dis.terrain import TerrainDatabase, TerrainEntity, TerrainKind, TerrainState

__all__ = [
    "DeadReckoningMirror",
    "DeadReckoningSource",
    "KinematicState",
    "DisScenario",
    "ScenarioRates",
    "ScheduledUpdate",
    "scenario_packet_rates",
    "TerrainDatabase",
    "TerrainEntity",
    "TerrainKind",
    "TerrainState",
]
