"""Runner for the ``repro bench`` CLI command.

The scenario definitions live outside the package in
``benchmarks/harness.py`` (they are experiment scripts, like the
figure benchmarks); this module loads that file by path, fans scenario
runs out across processes when asked, and writes the ``BENCH_*.json``
artifacts.  It lives inside the package so worker functions are
importable by name in ``multiprocessing`` children.
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys

__all__ = ["build_bench_parser", "run_bench", "load_harness"]

_HARNESS_CACHE: dict[str, object] = {}


def default_harness_path() -> pathlib.Path:
    root = pathlib.Path(__file__).resolve().parents[2]
    return root / "benchmarks" / "harness.py"


def load_harness(path: str | pathlib.Path | None = None):
    """Import ``benchmarks/harness.py`` by path (cached per path)."""
    path = str(path or default_harness_path())
    module = _HARNESS_CACHE.get(path)
    if module is None:
        spec = importlib.util.spec_from_file_location("repro_bench_harness", path)
        if spec is None or spec.loader is None:
            raise FileNotFoundError(f"benchmark harness not found: {path}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        _HARNESS_CACHE[path] = module
    return module


def _run_one(harness_path: str, name: str, tier: str, engine: str) -> tuple[str, str, dict]:
    """Worker entry point: one (scenario, engine) run in this process."""
    harness = load_harness(harness_path)
    return name, engine, harness.run_scenario(name, tier=tier, engine=engine)


def build_bench_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro bench", description="LBRM performance harness"
        )
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--quick", dest="tier", action="store_const", const="quick",
                      help="small populations, one repeat (default)")
    tier.add_argument("--full", dest="tier", action="store_const", const="full",
                      help="paper-scale populations, best of three repeats")
    parser.set_defaults(tier="quick")
    parser.add_argument("--only", metavar="NAME[,NAME...]", default=None,
                        help="run only these scenarios (comma separated)")
    parser.add_argument("--engine", choices=["both", "fast", "reference"], default="both",
                        help="engine configurations to measure (default both, "
                             "which also records the fast/reference speedup)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenario measurements across N processes")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="output directory for BENCH_*.json "
                             "(default benchmarks/results/)")
    parser.add_argument("--harness", metavar="PATH", default=None,
                        help=argparse.SUPPRESS)
    return parser


def run_bench(args: argparse.Namespace) -> int:
    harness_path = str(args.harness or default_harness_path())
    try:
        harness = load_harness(harness_path)
    except FileNotFoundError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 1

    names = list(harness.SCENARIOS)
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in harness.SCENARIOS]
        if unknown:
            print(f"bench: unknown scenario(s) {unknown}; "
                  f"have {sorted(harness.SCENARIOS)}", file=sys.stderr)
            return 2
    engines = ["fast", "reference"] if args.engine == "both" else [args.engine]
    out_dir = pathlib.Path(args.out) if args.out else harness.RESULTS_DIR

    jobs = [(name, engine) for name in names for engine in engines]
    runs: dict[str, dict[str, dict]] = {name: {} for name in names}
    if args.jobs > 1 and len(jobs) > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = [
                pool.submit(_run_one, harness_path, name, args.tier, engine)
                for name, engine in jobs
            ]
            for future in concurrent.futures.as_completed(futures):
                name, engine, run = future.result()
                runs[name][engine] = run
    else:
        for name, engine in jobs:
            _, _, run = _run_one(harness_path, name, args.tier, engine)
            runs[name][engine] = run

    failures = 0
    for name in names:
        try:
            result = harness.assemble_result(name, args.tier, runs[name])
        except AssertionError as exc:
            print(f"bench: FAILED {exc}", file=sys.stderr)
            failures += 1
            continue
        path = harness.write_result(result, out_dir)
        line = f"bench {name} [{args.tier}]"
        for engine in engines:
            run = runs[name][engine]
            line += f"  {engine}: {run['events_per_sec']:,.0f} ev/s ({run['wall_s']:.3f}s)"
        if "speedup" in result:
            line += f"  speedup: {result['speedup']:.2f}x"
        print(line)
        print(f"  -> {path}")
    return 1 if failures else 0
