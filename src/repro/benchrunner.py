"""Runner for the ``repro bench`` CLI command.

The scenario definitions live outside the package in
``benchmarks/harness.py`` (they are experiment scripts, like the
figure benchmarks); this module loads that file by path, fans scenario
runs out across processes when asked, and writes the ``BENCH_*.json``
artifacts.  It lives inside the package so worker functions are
importable by name in ``multiprocessing`` children.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys

__all__ = [
    "build_bench_parser",
    "run_bench",
    "load_harness",
    "profile_scenario",
    "check_results",
]

_HARNESS_CACHE: dict[str, object] = {}


def default_harness_path() -> pathlib.Path:
    root = pathlib.Path(__file__).resolve().parents[2]
    return root / "benchmarks" / "harness.py"


def load_harness(path: str | pathlib.Path | None = None):
    """Import ``benchmarks/harness.py`` by path (cached per path)."""
    path = str(path or default_harness_path())
    module = _HARNESS_CACHE.get(path)
    if module is None:
        spec = importlib.util.spec_from_file_location("repro_bench_harness", path)
        if spec is None or spec.loader is None:
            raise FileNotFoundError(f"benchmark harness not found: {path}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        _HARNESS_CACHE[path] = module
    return module


def _run_one(harness_path: str, name: str, tier: str, engine: str) -> tuple[str, str, dict]:
    """Worker entry point: one (scenario, engine) run in this process."""
    harness = load_harness(harness_path)
    return name, engine, harness.run_scenario(name, tier=tier, engine=engine)


def profile_scenario(
    harness_path: str,
    name: str,
    tier: str,
    engine: str,
    out_dir: pathlib.Path,
) -> tuple[dict, pathlib.Path, pathlib.Path]:
    """Run one (scenario, engine) pair under cProfile.

    Writes two artifacts next to the BENCH results:

    * ``PROFILE_<scenario>_<engine>.pstats`` — the raw profile, loadable
      with :mod:`pstats` and flamegraph front-ends (snakeviz, flameprof,
      ``gprof2dot``).
    * ``PROFILE_<scenario>_<engine>.txt`` — the top functions by
      cumulative and by internal time, for reading in a terminal or a CI
      log without extra tooling.

    Returns ``(run_metrics, pstats_path, txt_path)``.  The metrics come
    from the profiled run, so they carry instrumentation overhead — use
    them for relative hotspot weights, never as throughput numbers.
    """
    import cProfile
    import io
    import pstats

    harness = load_harness(harness_path)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run = harness.run_scenario(name, tier=tier, engine=engine)
    finally:
        profiler.disable()
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"PROFILE_{name}_{engine}"
    pstats_path = out_dir / f"{stem}.pstats"
    profiler.dump_stats(pstats_path)

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs()
    buf.write(f"# {name} [{tier}] engine={engine}\n")
    buf.write(f"# events_per_sec (profiled, overhead-laden): {run['events_per_sec']:,.0f}\n\n")
    buf.write("== top 30 by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(30)
    buf.write("\n== top 30 by internal time ==\n")
    stats.sort_stats("tottime").print_stats(30)
    txt_path = out_dir / f"{stem}.txt"
    txt_path.write_text(buf.getvalue())
    return run, pstats_path, txt_path


def check_results(
    results: list[dict],
    baseline_dir: pathlib.Path | str,
    tolerance: float = 0.15,
    expect_complete: bool = True,
) -> list[str]:
    """Compare fresh bench results against committed baselines.

    For every assembled result whose scenario has a
    ``BENCH_<scenario>.json`` in ``baseline_dir``, the fast engine's
    ``events_per_sec`` must be no more than ``tolerance`` below the
    baseline's.  Returns a list of human-readable failures (empty ⇒
    gate passes).  Pure function — no I/O besides reading baselines — so
    the gate itself is unit-testable.

    With ``expect_complete`` (the default for unfiltered runs), a
    baseline file for a scenario the run did not produce is itself a
    failure: a retired or renamed scenario must take its baseline with
    it, otherwise the stale file silently passes the gate forever.
    Pass ``expect_complete=False`` when the run was filtered
    (``--only``), where missing scenarios are expected.
    """
    baseline_dir = pathlib.Path(baseline_dir)
    failures: list[str] = []
    if expect_complete:
        measured = {result["scenario"] for result in results}
        for path in sorted(baseline_dir.glob("BENCH_*.json")):
            stale = path.stem[len("BENCH_"):]
            if stale not in measured:
                failures.append(
                    f"{stale}: baseline {path.name} exists but the run produced no "
                    f"such scenario — delete the stale baseline (or rerun without "
                    f"--only if the scenario still exists)"
                )
    for result in results:
        name = result["scenario"]
        path = baseline_dir / f"BENCH_{name}.json"
        if not path.exists():
            failures.append(
                f"{name}: no baseline at {path} — run `repro bench --{result['tier']} "
                f"--out {baseline_dir}` and commit the result"
            )
            continue
        baseline = json.loads(path.read_text())
        if baseline.get("tier") != result.get("tier"):
            failures.append(
                f"{name}: baseline tier {baseline.get('tier')!r} does not match "
                f"run tier {result.get('tier')!r}; compare like against like"
            )
            continue
        base_run = baseline.get("engines", {}).get("fast")
        new_run = result.get("engines", {}).get("fast")
        if base_run is None or new_run is None:
            failures.append(f"{name}: fast-engine metrics missing from baseline or run")
            continue
        base_eps = base_run["events_per_sec"]
        new_eps = new_run["events_per_sec"]
        floor = base_eps * (1.0 - tolerance)
        if new_eps < floor:
            drop = 100.0 * (1.0 - new_eps / base_eps)
            failures.append(
                f"{name}: events_per_sec regressed {drop:.1f}% "
                f"({new_eps:,.0f} vs baseline {base_eps:,.0f}, floor {floor:,.0f}). "
                f"If the slowdown is intended, refresh the baseline with "
                f"`repro bench --{result['tier']} --out {baseline_dir}` and commit "
                f"the updated {path.name}."
            )
    return failures


def build_bench_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro bench", description="LBRM performance harness"
        )
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--quick", dest="tier", action="store_const", const="quick",
                      help="small populations, one repeat (default)")
    tier.add_argument("--full", dest="tier", action="store_const", const="full",
                      help="paper-scale populations, best of three repeats")
    tier.add_argument("--scale", dest="tier", action="store_const", const="scale",
                      help="aggregate-scale scenarios (10^5-10^6 modeled "
                           "receivers via repro.scale); fast engine only")
    tier.add_argument("--hierarchy", dest="tier", action="store_const", const="hierarchy",
                      help="k-level repair-tree scenarios (recovery-latency CDF, "
                           "flat vs depth-3 at 10k sites); fast engine only")
    tier.add_argument("--aio", dest="tier", action="store_const", const="aio",
                      help="live-UDP loopback transport tier: bundled zero-copy "
                           "fast path (fast) vs the pre-bundling transport "
                           "baseline (reference) over real sockets; writes an "
                           "explicit skipped artifact where sockets are "
                           "unavailable")
    parser.set_defaults(tier="quick")
    parser.add_argument("--only", metavar="NAME[,NAME...]", default=None,
                        help="run only these scenarios (comma separated)")
    parser.add_argument("--engine", choices=["both", "fast", "reference"], default="both",
                        help="engine configurations to measure (default both, "
                             "which also records the fast/reference speedup)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenario measurements across N processes")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="output directory for BENCH_*.json "
                             "(default benchmarks/results/)")
    parser.add_argument("--profile", action="store_true",
                        help="run each (scenario, engine) pair under cProfile and "
                             "write PROFILE_*.pstats / PROFILE_*.txt artifacts "
                             "(throughput numbers are not recorded: profiled runs "
                             "carry instrumentation overhead)")
    parser.add_argument("--check", metavar="BASELINE_DIR", default=None,
                        help="after measuring, fail if any scenario's fast-engine "
                             "events_per_sec fell more than the tolerance below "
                             "the committed BENCH_*.json in BASELINE_DIR")
    parser.add_argument("--check-tolerance", type=float, default=0.15, metavar="FRAC",
                        help="allowed fractional events_per_sec drop for --check "
                             "(default 0.15)")
    parser.add_argument("--harness", metavar="PATH", default=None,
                        help=argparse.SUPPRESS)
    return parser


def run_bench(args: argparse.Namespace) -> int:
    harness_path = str(args.harness or default_harness_path())
    try:
        harness = load_harness(harness_path)
    except FileNotFoundError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 1

    # The scale tier runs its own scenario set (aggregate-model runs the
    # reference engine has no twin for); the aio tier runs the live-UDP
    # scenarios; quick/full run the exact set.
    if args.tier == "scale":
        scenario_map = getattr(harness, "SCALE_SCENARIOS", {})
        if not scenario_map:
            print("bench: this harness defines no SCALE_SCENARIOS", file=sys.stderr)
            return 1
    elif args.tier == "hierarchy":
        scenario_map = getattr(harness, "HIERARCHY_SCENARIOS", {})
        if not scenario_map:
            print("bench: this harness defines no HIERARCHY_SCENARIOS", file=sys.stderr)
            return 1
    elif args.tier == "aio":
        scenario_map = getattr(harness, "AIO_SCENARIOS", {})
        if not scenario_map:
            print("bench: this harness defines no AIO_SCENARIOS", file=sys.stderr)
            return 1
        available = getattr(harness, "aio_available", None)
        if available is not None and not available():
            # "Cannot measure here" must be a visible artifact, not a
            # silent green: CI uploads the skip record alongside real
            # BENCH files, and the --check gate is not run.
            out_dir = pathlib.Path(args.out) if args.out else harness.RESULTS_DIR
            out_dir.mkdir(parents=True, exist_ok=True)
            skip_path = out_dir / "BENCH_aio_skipped.json"
            skip_path.write_text(json.dumps({
                "status": "skipped",
                "tier": "aio",
                "reason": "UDP sockets unavailable in this environment",
            }, indent=2, sort_keys=True) + "\n")
            print(f"bench --aio: skipped (no UDP sockets); artifact: {skip_path}")
            return 0
    else:
        scenario_map = harness.SCENARIOS
    names = list(scenario_map)
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in scenario_map]
        if unknown:
            print(f"bench: unknown scenario(s) {unknown}; "
                  f"have {sorted(scenario_map)}", file=sys.stderr)
            return 2
    if args.tier in ("scale", "hierarchy"):
        if args.engine == "reference":
            print(f"bench: {args.tier} scenarios run the fast engine only", file=sys.stderr)
            return 2
        engines = ["fast"]
    else:
        engines = ["fast", "reference"] if args.engine == "both" else [args.engine]
    out_dir = pathlib.Path(args.out) if args.out else harness.RESULTS_DIR

    if getattr(args, "profile", False):
        # Profiling replaces measurement: results are not written (they
        # would poison the perf trajectory with instrumented numbers).
        for name in names:
            for engine in engines:
                run, pstats_path, txt_path = profile_scenario(
                    harness_path, name, args.tier, engine, out_dir
                )
                print(f"bench --profile {name} [{args.tier}] {engine}: "
                      f"{run['events_per_sec']:,.0f} ev/s (instrumented)")
                print(f"  -> {pstats_path}")
                print(f"  -> {txt_path}")
        return 0

    jobs = [(name, engine) for name in names for engine in engines]
    runs: dict[str, dict[str, dict]] = {name: {} for name in names}
    if args.jobs > 1 and len(jobs) > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = [
                pool.submit(_run_one, harness_path, name, args.tier, engine)
                for name, engine in jobs
            ]
            for future in concurrent.futures.as_completed(futures):
                name, engine, run = future.result()
                runs[name][engine] = run
    else:
        for name, engine in jobs:
            _, _, run = _run_one(harness_path, name, args.tier, engine)
            runs[name][engine] = run

    failures = 0
    results: list[dict] = []
    for name in names:
        try:
            result = harness.assemble_result(name, args.tier, runs[name])
        except AssertionError as exc:
            print(f"bench: FAILED {exc}", file=sys.stderr)
            failures += 1
            continue
        results.append(result)
        path = harness.write_result(result, out_dir)
        line = f"bench {name} [{args.tier}]"
        for engine in engines:
            run = runs[name][engine]
            line += f"  {engine}: {run['events_per_sec']:,.0f} ev/s ({run['wall_s']:.3f}s)"
        if "speedup" in result:
            line += f"  speedup: {result['speedup']:.2f}x"
        print(line)
        print(f"  -> {path}")

    check_dir = getattr(args, "check", None)
    if check_dir:
        gate_failures = check_results(
            results, check_dir, tolerance=getattr(args, "check_tolerance", 0.15),
            expect_complete=not args.only,
        )
        for failure in gate_failures:
            print(f"bench --check: FAILED {failure}", file=sys.stderr)
        if gate_failures:
            failures += len(gate_failures)
        else:
            print(f"bench --check: OK — no scenario regressed more than "
                  f"{getattr(args, 'check_tolerance', 0.15):.0%} vs {check_dir}")
    return 1 if failures else 0
