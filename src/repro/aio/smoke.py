"""``repro aio-smoke`` — live-UDP conformance check with a JSON artifact.

Runs a small :class:`~repro.aio.cluster.AioCluster` (primary + site
secondary + replica + receivers) on real loopback multicast, streams a
handful of packets, and grades the run with
:class:`~repro.chaos.live.LiveOracle` against invariants I1–I4 — the
same judgement the simulator's conformance campaign uses.  The outcome
is written as machine-readable JSON so CI can upload it as an artifact.

Hosted CI runners frequently cannot route multicast on loopback, so the
command first probes the data path with a raw send/receive round-trip;
when the probe fails it writes a ``"skipped"`` report and exits 0 —
"cannot test here" must not masquerade as "conformant" *or* "broken".
"""

from __future__ import annotations

import argparse
import asyncio
import json
import select
import socket
import sys
import time

__all__ = ["build_smoke_parser", "run_smoke", "multicast_available"]

PROBE_GROUP = "239.255.99.99"
PROBE_PAYLOAD = b"repro-aio-smoke-probe"


def multicast_available(interface: str = "127.0.0.1", timeout: float = 1.0) -> bool:
    """True when a loopback multicast datagram makes a round trip."""
    from repro.aio.udp import make_multicast_recv_socket, make_multicast_send_socket

    recv = send = None
    try:
        recv = make_multicast_recv_socket(PROBE_GROUP, 0, interface)
        port = recv.getsockname()[1]
        send = make_multicast_send_socket(interface)
        send.sendto(PROBE_PAYLOAD, (PROBE_GROUP, port))
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            ready, _, _ = select.select([recv], [], [], deadline - time.monotonic())
            if ready and recv.recv(1024) == PROBE_PAYLOAD:
                return True
        return False
    except OSError:
        return False
    finally:
        for sock in (recv, send):
            if sock is not None:
                sock.close()


async def _run_cluster(args: argparse.Namespace) -> dict:
    from repro.aio.cluster import AioCluster
    from repro.chaos.live import LiveOracle
    from repro.core.config import DiscoveryConfig, LbrmConfig

    config = LbrmConfig()
    cluster = AioCluster(
        "smoke/aio",
        config,
        n_receivers=args.receivers,
        n_secondaries=args.secondaries,
        n_replicas=args.replicas,
        use_discovery=args.discovery,
        discovery=DiscoveryConfig(initial_ttl=1, query_timeout=0.3),
        bundling=args.bundling,
    )
    started = time.monotonic()
    async with cluster:
        oracle = LiveOracle(cluster)
        oracle.install()
        if args.discovery:
            await cluster.wait_discovery(timeout=10.0)
        for i in range(args.packets):
            await cluster.publish(f"smoke-{i}".encode())
            await asyncio.sleep(args.spacing)
        # Let retransmissions/heartbeats settle before grading.
        for i in range(args.receivers):
            await cluster.deliveries(i, args.packets, timeout=5.0)
        await asyncio.sleep(0.3)
        violations = oracle.finish()
        report = {
            "status": "violations" if violations else "ok",
            "elapsed_s": round(time.monotonic() - started, 3),
            "packets": args.packets,
            "receivers": args.receivers,
            "secondaries": args.secondaries,
            "replicas": args.replicas,
            "discovery": args.discovery,
            "bundling": args.bundling,
            "tx_bundles": sum(n.stats["tx_bundles"] for n in cluster.nodes),
            "tx_coalesced_packets": sum(
                n.stats["tx_coalesced_packets"] for n in cluster.nodes
            ),
            "violations": [v.to_dict() for v in violations],
            "invariants": ["delivery", "silence", "log-safety", "promotion"],
            "delivered": [
                len(node.delivered) for node in cluster.receiver_nodes
            ],
            "socket_errors": sum(n.stats["socket_errors"] for n in cluster.nodes),
            "group_mismatches": sum(n.stats["group_mismatches"] for n in cluster.nodes),
        }
        if args.discovery:
            report["discovery_stats"] = [
                dict(c.stats, found_level=c.found_level) for c in cluster.discovery_clients
            ]
        return report


def build_smoke_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--packets", type=int, default=8, help="packets to stream (default 8)")
    parser.add_argument("--receivers", type=int, default=3, help="receivers (default 3)")
    parser.add_argument(
        "--secondaries", type=int, default=1, help="site secondary loggers (default 1)"
    )
    parser.add_argument("--replicas", type=int, default=1, help="log replicas (default 1)")
    parser.add_argument(
        "--discovery", action="store_true",
        help="locate loggers via expanding-ring discovery instead of static wiring",
    )
    parser.add_argument(
        "--spacing", type=float, default=0.05, help="seconds between packets (default 0.05)"
    )
    parser.add_argument(
        "--bundling", action="store_true",
        help="coalesce outbound packets into bundle datagrams (transport fast path)",
    )
    parser.add_argument(
        "--out", default="AIO_SMOKE.json", help="JSON report path (default AIO_SMOKE.json)"
    )


def run_smoke(args: argparse.Namespace) -> int:
    if not multicast_available():
        report = {
            "status": "skipped",
            "reason": "loopback multicast not routable in this environment",
        }
        _write(args.out, report)
        print("aio-smoke: skipped (no loopback multicast); report written to", args.out)
        return 0
    try:
        report = asyncio.run(_run_cluster(args))
    except (OSError, TimeoutError, asyncio.TimeoutError) as exc:
        report = {"status": "error", "reason": f"{type(exc).__name__}: {exc}"}
        _write(args.out, report)
        print(f"aio-smoke: error — {report['reason']}", file=sys.stderr)
        return 1
    _write(args.out, report)
    if report["status"] == "ok":
        print(
            f"aio-smoke: OK — {report['packets']} packets to {report['receivers']} receivers "
            f"({report['secondaries']} site logger(s), {report['replicas']} replica(s)), "
            f"invariants I1-I4 clean in {report['elapsed_s']}s; report: {args.out}"
        )
        return 0
    print(f"aio-smoke: {len(report['violations'])} invariant violation(s); see {args.out}",
          file=sys.stderr)
    for v in report["violations"]:
        print(f"  [{v['invariant']}] {v['subject']}: {v['detail']}", file=sys.stderr)
    return 1


def _write(path: str, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
