"""Mapping LBRM group names onto IP multicast addresses and ports.

LBRM groups are fine-grained — one per terrain entity, cached page, or
stock symbol — so a deployment needs thousands of multicast addresses.
:class:`GroupDirectory` hashes group names deterministically into the
administratively-scoped ``239.192.0.0/14`` block (RFC 2365 organization
local scope) and a configurable port range, with explicit overrides for
operators who assign addresses by hand.

Every endpoint that shares a directory configuration derives the same
``(address, port)`` for a group, with no coordination traffic — the same
convention the paper's Appendix A uses by embedding the multicast
address in the HTML document itself.
"""

from __future__ import annotations

import hashlib
import ipaddress

__all__ = ["GroupDirectory"]


class GroupDirectory:
    """Deterministic group-name → (multicast address, port) mapping."""

    def __init__(
        self,
        base_network: str = "239.192.0.0/14",
        port_base: int = 30000,
        port_count: int = 20000,
    ) -> None:
        network = ipaddress.ip_network(base_network)
        if not network.is_multicast:
            raise ValueError(f"{base_network} is not a multicast block")
        if not 1 <= port_base <= 65535:
            raise ValueError(f"port_base out of range: {port_base}")
        if port_base + port_count - 1 > 65535:
            raise ValueError("port range exceeds 65535")
        self._network = network
        self._port_base = port_base
        self._port_count = port_count
        self._overrides: dict[str, tuple[str, int]] = {}

    def register(self, group: str, address: str, port: int) -> None:
        """Pin ``group`` to an explicit address (overrides hashing)."""
        if not ipaddress.ip_address(address).is_multicast:
            raise ValueError(f"{address} is not a multicast address")
        self._overrides[group] = (address, port)

    def resolve(self, group: str) -> tuple[str, int]:
        """The (multicast address, UDP port) for ``group``."""
        override = self._overrides.get(group)
        if override is not None:
            return override
        digest = hashlib.sha256(group.encode("utf-8")).digest()
        host_bits = int.from_bytes(digest[:8], "big")
        offset = host_bits % self._network.num_addresses
        address = str(self._network[offset])
        port = self._port_base + (int.from_bytes(digest[8:12], "big") % self._port_count)
        return address, port
