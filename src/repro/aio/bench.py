"""Loopback throughput tier for the real-UDP runtime (``repro bench --aio``).

Measures the live transport the same way the simulator tiers measure
the engine: deterministic workloads, each run under two configurations —

* ``fast``      — the post-fast-path transport: TX coalescing on
  (``bundling=True``), raw-socket zero-copy RX ring, struct codecs.
* ``reference`` — the retained pre-fast-path baseline
  (``legacy_transports=True``): asyncio datagram transports (one bytes
  allocation + one callback per datagram), copy-normalizing decode,
  per-action encode, one datagram per packet on the wire.

Two scenarios, mirroring the simulator tiers' engine/scale split:

* ``aio_cluster_throughput`` — the full protocol stack end to end: a
  real :class:`~repro.aio.cluster.AioCluster` (sender + primary + site
  logger + N receivers on loopback multicast) carries a flow-controlled
  stream and every receiver must finish holding the complete stream.
  Protocol work (logging, ACK tracking, ordering) is a large fixed cost
  in both configurations, so this ratio is the *deployment-visible*
  speedup.
* ``aio_transport_blast`` — the transport fast path in isolation: a
  sender node fans a stream to N sink receivers over unicast sockets,
  with minimal per-packet protocol work.  Per-datagram costs dominate,
  so this ratio is the *transport* speedup the bundling design targets
  (HolbrookSC95 §4's bundling argument).

Where loopback multicast is unroutable (common on hosted CI) the
cluster scenario falls back to a unicast star over the identical
TX-coalescing and RX-ring code paths.  Where even UDP sockets are
unavailable the caller (``repro bench --aio``) writes an explicit
"skipped" artifact instead; silence must not read as "no regression".

Alongside packets/s each run records the fixed per-datagram costs the
fast path amortizes: datagrams sent, ``sendto``/``recvfrom`` syscall
counts, and the bundle-occupancy histogram.
"""

from __future__ import annotations

import asyncio
import socket
import time

from repro.aio.smoke import multicast_available

__all__ = ["aio_available", "run_loopback", "PARAMS"]

PARAMS = {
    "quick": {
        "cluster": {
            "packets": 400, "burst": 32, "flow_window": 96, "payload": 32,
            "receivers": 3, "secondaries": 1, "max_bundle_bytes": 1400,
            "repeats": 1, "warm_s": 1.0,
        },
        "blast": {
            "packets": 1000, "burst": 32, "flow_window": 128, "payload": 32,
            "receivers": 3, "secondaries": 0, "max_bundle_bytes": 1400,
            "repeats": 1, "warm_s": 1.0,
        },
    },
    "aio": {
        "cluster": {
            "packets": 3000, "burst": 48, "flow_window": 96, "payload": 32,
            "receivers": 3, "secondaries": 1, "max_bundle_bytes": 1400,
            "repeats": 5, "warm_s": 6.0,
        },
        "blast": {
            "packets": 6000, "burst": 48, "flow_window": 128, "payload": 32,
            "receivers": 3, "secondaries": 0, "max_bundle_bytes": 1400,
            "repeats": 5, "warm_s": 6.0,
        },
    },
}


_warmed = False


def _warm_up(runner, bundling: bool, legacy: bool, p: dict, seconds: float) -> None:
    """Run (and discard) real scenario work once per process.

    The governor ramps each core's clock over the first seconds of
    sustained load, so a cold process measures whichever engine runs
    first at a lower frequency than the second — a 2x order bias
    observed on CI-class hosts.  A synthetic spin loop does not fix
    this (it warms whichever core it lands on, not the ones the event
    loop and socket work migrate across), so the warm-up is the
    benchmark itself: discarded small runs until the budget is spent.
    Subsequent runs keep the clock up — the measured loops spin-yield.
    """
    global _warmed
    if _warmed:
        return
    _warmed = True
    small = dict(p, packets=min(800, p["packets"]))
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        asyncio.run(runner(bundling, legacy, small))


def aio_available() -> bool:
    """True when this environment can run the loopback tier at all.

    The tier needs working UDP sockets on loopback; multicast is probed
    separately (its absence selects the unicast fallback, not a skip).
    """
    try:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.bind(("127.0.0.1", 0))
        finally:
            sock.close()
        return True
    except OSError:
        return False


async def _drain(nodes, expected: int, timeout: float = 60.0) -> None:
    """Spin-yield until every node delivered ``expected`` packets.

    ``sleep(0)`` (not a real sleep) so receive callbacks run back to
    back and no polling granularity leaks into the timed region — the
    drain burns CPU, which is fine for a loopback benchmark.
    """
    deadline = time.monotonic() + timeout
    while any(len(n.delivered) < expected for n in nodes):
        if time.monotonic() >= deadline:
            counts = [len(n.delivered) for n in nodes]
            raise TimeoutError(f"drain timed out: delivered={counts}, expected={expected}")
        await asyncio.sleep(0)


def _transport_stats(nodes) -> dict:
    tx_datagrams = sum(n.stats["tx_datagrams"] for n in nodes)
    rx_datagrams = sum(n.stats["rx_datagrams"] for n in nodes)
    occupancy: dict[int, int] = {}
    for n in nodes:
        for k, v in n.bundle_occupancy.items():
            occupancy[k] = occupancy.get(k, 0) + v
    flushes = sum(occupancy.values())
    coalesced = sum(k * v for k, v in occupancy.items())
    return {
        "tx_datagrams": tx_datagrams,
        "rx_datagrams": rx_datagrams,
        # One sendto per datagram out, one recvfrom per datagram in:
        # the fixed per-datagram cost bundling amortizes.
        "syscalls": tx_datagrams + rx_datagrams,
        "tx_bundles": sum(n.stats["tx_bundles"] for n in nodes),
        "tx_coalesced_packets": sum(n.stats["tx_coalesced_packets"] for n in nodes),
        "tx_bundle_drops": sum(n.stats["tx_bundle_drops"] for n in nodes),
        "decode_errors": sum(n.stats["decode_errors"] for n in nodes),
        "socket_errors": sum(n.stats["socket_errors"] for n in nodes),
        "bundle_occupancy": {str(k): occupancy[k] for k in sorted(occupancy)},
        "mean_occupancy": round(coalesced / flushes, 2) if flushes else 0.0,
    }


async def _run_multicast(bundling: bool, legacy: bool, p: dict) -> dict:
    from repro.aio.cluster import AioCluster
    from repro.core.config import LbrmConfig

    cluster = AioCluster(
        "bench/aio",
        LbrmConfig(),
        n_receivers=p["receivers"],
        n_secondaries=p["secondaries"],
        bundling=bundling,
        max_bundle_bytes=p["max_bundle_bytes"],
        legacy_transports=legacy,
    )
    payload = b"b" * p["payload"]
    async with cluster:
        # Warm-up: one packet end to end primes sockets, codec caches,
        # and the receivers' watchdog state before the timed region.
        await cluster.publish(b"warm-up")
        await _drain(cluster.receiver_nodes, 1)
        t0 = time.perf_counter()
        sent = 0
        while sent < p["packets"]:
            n = min(p["burst"], p["packets"] - sent)
            if legacy:
                # The pre-fast-path API: one publish() await per packet
                # (one coroutine hop and one timer reschedule each).
                for _ in range(n):
                    await cluster.publish(payload)
            else:
                # One frame's worth of updates enters the stack in one
                # tick — the arrival pattern (DIS state-update frames)
                # that TX coalescing packs into bundles.
                await cluster.publish_burst([payload] * n)
            sent += n
            # Flow control: never run more than flow_window packets
            # ahead of the slowest receiver, so kernel socket buffers
            # bound the backlog in both configurations and the number
            # measured is *sustainable* throughput, not burst-then-
            # recover.  (+1: the warm-up packet.)
            await _drain(cluster.receiver_nodes, sent + 1 - p["flow_window"])
        await _drain(cluster.receiver_nodes, p["packets"] + 1)
        wall = time.perf_counter() - t0
        delivered = sum(len(n.delivered) for n in cluster.receiver_nodes)
        stats = _transport_stats(cluster.nodes)
        return _run_dict("multicast", bundling, p, wall, delivered, stats)


async def _run_blast(
    bundling: bool, legacy: bool, p: dict, transport: str = "unicast-blast"
) -> dict:
    """Transport-isolated unicast star: sender fans the stream to N sink
    nodes with minimal per-packet protocol work, so the measured ratio
    is dominated by per-datagram transport cost (what bundling + the RX
    ring amortize) rather than by logger/receiver protocol logic.

    Doubles as the cluster scenario's fallback where loopback multicast
    is unroutable (``transport="unicast-fallback"``).
    """
    from repro.aio.groupmap import GroupDirectory
    from repro.aio.node import AioNode
    from repro.core.actions import SendUnicast
    from repro.core.packets import DataPacket

    _NO_ACTIONS: list = []

    class _Sink:
        """Counting sink: the transport's job ends when the decoded
        packet reaches the machine, so the sink just tallies arrivals —
        any protocol work here would dilute the per-datagram cost this
        scenario isolates.
        """

        count = 0

        def handle(self, packet, addr, now):
            self.count += 1
            return _NO_ACTIONS

        def poll(self, now):
            return _NO_ACTIONS

        def next_wakeup(self):
            return None

    directory = GroupDirectory()
    sinks = [_Sink() for _ in range(p["receivers"])]
    receivers = [
        AioNode([sink], directory=directory, legacy_transports=legacy)
        for sink in sinks
    ]
    sender = AioNode(
        [], directory=directory,
        bundling=bundling, max_bundle_bytes=p["max_bundle_bytes"],
        legacy_transports=legacy,
    )
    nodes = [sender, *receivers]
    try:
        for node in nodes:
            await node.start()
        dests = [node.address for node in receivers]
        payload = b"b" * p["payload"]
        # Pre-build the workload outside the timed region: packet
        # construction is application work; the clock measures encode →
        # sendto → recvfrom → decode → machine dispatch.  One packet
        # object fans to every receiver; in fast mode the encode hoist
        # in AioNode._execute_sync encodes it once, legacy mode
        # re-encodes per destination (pre-fast-path behaviour).
        bursts = []
        seq = 1
        sent = 0
        while sent < p["packets"]:
            n = min(p["burst"], p["packets"] - sent)
            actions = []
            for _ in range(n):
                seq += 1
                packet = DataPacket(group="bench/aio", seq=seq, payload=payload)
                actions.extend(SendUnicast(dest=d, packet=packet) for d in dests)
            bursts.append((n, actions))
            sent += n

        async def drain(expected: int) -> None:
            deadline = time.monotonic() + 60.0
            while any(s.count < expected for s in sinks):
                if time.monotonic() >= deadline:
                    counts = [s.count for s in sinks]
                    raise TimeoutError(
                        f"blast drain timed out: counts={counts}, expected={expected}"
                    )
                await asyncio.sleep(0)

        warm = DataPacket(group="bench/aio", seq=1, payload=payload)
        sender._execute_sync([SendUnicast(dest=d, packet=warm) for d in dests])
        await drain(1)
        t0 = time.perf_counter()
        done = 0
        for n, actions in bursts:
            sender._execute_sync(actions)
            done += n
            await drain(done + 1 - p["flow_window"])
        await drain(p["packets"] + 1)
        wall = time.perf_counter() - t0
        delivered = sum(s.count - 1 for s in sinks)
        stats = _transport_stats(nodes)
        return _run_dict(transport, bundling, p, wall, delivered, stats)
    finally:
        for node in nodes:
            await node.close()


def _run_dict(transport, bundling, p, wall, delivered, stats) -> dict:
    packets_total = p["packets"] * p["receivers"]
    return {
        "wall_s": wall,
        "events": packets_total,
        "events_per_sec": packets_total / wall,
        "datagrams_per_sec": stats["tx_datagrams"] / wall,
        "transport": transport,
        "bundling": bundling,
        "sim_events": 0,
        "peak_queue_depth": 0,
        **stats,
        "checks": {
            # Deterministic across both modes (counts only; no timing):
            # bundling=False must carry the identical stream.
            "transport": transport,
            "packets_offered": p["packets"],
            "receivers": p["receivers"],
            "delivered_complete": delivered >= packets_total,
        },
    }


def run_loopback(
    bundling: bool,
    tier: str = "aio",
    legacy_transports: bool = False,
    scenario: str = "cluster",
) -> dict:
    """One measured run of a loopback scenario; returns a harness run dict.

    ``legacy_transports=True`` selects the retained pre-fast-path RX/TX
    (asyncio transports, copy-normalizing decode, per-action encode) —
    the reference configuration of the tier.  ``scenario`` picks
    ``"cluster"`` (full protocol stack) or ``"blast"`` (transport
    isolated; see module docstring).
    """
    p = PARAMS.get(tier, PARAMS["aio"])[scenario]
    if scenario == "blast":
        runner = _run_blast
    elif multicast_available():
        runner = _run_multicast
    else:
        runner = _cluster_fallback
    _warm_up(runner, bundling, legacy_transports, p, p.get("warm_s", 2.0))
    best = None
    for _ in range(p["repeats"]):
        run = asyncio.run(runner(bundling, legacy_transports, p))
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    best["params"] = dict(p)
    return best


async def _cluster_fallback(bundling: bool, legacy: bool, p: dict) -> dict:
    return await _run_blast(bundling, legacy, p, transport="unicast-fallback")
