"""UDP socket construction for the asyncio LBRM runtime.

Plain helpers around the socket options multicast needs: membership,
loopback, TTL, interface selection.  Defaults target the loopback
interface so the whole protocol stack can be exercised on one machine
(CI, laptops) — pass a real interface address for LAN deployments.
"""

from __future__ import annotations

import socket
import struct

__all__ = [
    "make_unicast_socket",
    "make_multicast_recv_socket",
    "make_multicast_send_socket",
    "set_multicast_ttl",
    "ReceiveRing",
    "MAX_DATAGRAM",
]

DEFAULT_INTERFACE = "127.0.0.1"

# Largest UDP payload: receive buffers must hold it or recvfrom_into
# silently truncates the datagram (which then reads as corruption).
MAX_DATAGRAM = 65535


class ReceiveRing:
    """Preallocated receive buffers for the zero-copy datagram path.

    ``recvfrom_into`` needs a writable buffer per datagram; allocating
    one per receive would reintroduce exactly the per-packet churn the
    fast path removes.  The ring hands out the same few buffers
    round-robin — safe because the node's dispatch is synchronous (the
    decoded packet copies out its variable-length tails, so nothing
    references the buffer once dispatch returns), with a few spare slots
    as headroom against any short-lived aliasing (e.g. a frame list from
    an in-flight bundle).
    """

    __slots__ = ("_views", "_next")

    def __init__(self, slots: int = 4, size: int = MAX_DATAGRAM) -> None:
        if slots < 1:
            raise ValueError("ReceiveRing needs at least one slot")
        self._views = [memoryview(bytearray(size)) for _ in range(slots)]
        self._next = 0

    def acquire(self) -> memoryview:
        """The next buffer in rotation (callers do not release)."""
        views = self._views
        view = views[self._next]
        self._next = (self._next + 1) % len(views)
        return view


def make_unicast_socket(host: str = "127.0.0.1", port: int = 0) -> socket.socket:
    """A bound, non-blocking UDP socket for point-to-point traffic."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.setblocking(False)
    return sock


def make_multicast_recv_socket(
    group_addr: str, port: int, interface: str = DEFAULT_INTERFACE
) -> socket.socket:
    """A socket joined to ``group_addr`` and bound to its port.

    Where the platform allows it (Linux, BSDs) the socket is bound to
    the *group address* itself, so the kernel filters out datagrams sent
    to other groups that happen to share the port — without this, two
    groups hashed onto one port cross-deliver each other's traffic.
    Platforms that reject multicast binds (Windows) fall back to the
    wildcard bind; the node layer still drops mismatched groups by
    decoded group name.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    # SO_REUSEPORT lets several local endpoints (receivers in one test
    # process) share the group port, mirroring distinct hosts on a LAN.
    if hasattr(socket, "SO_REUSEPORT"):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    try:
        sock.bind((group_addr, port))
    except OSError:
        sock.bind(("", port))
    mreq = struct.pack("4s4s", socket.inet_aton(group_addr), socket.inet_aton(interface))
    sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
    sock.setblocking(False)
    return sock


def make_multicast_send_socket(interface: str = DEFAULT_INTERFACE, ttl: int = 1) -> socket.socket:
    """A socket configured to originate multicast on ``interface``.

    Loopback is enabled so co-located endpoints (and the sender's own
    primary logger) hear the transmission — required for single-machine
    operation and harmless on real LANs.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, ttl)
    sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
    sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_IF, socket.inet_aton(interface))
    sock.setblocking(False)
    return sock


def set_multicast_ttl(sock: socket.socket, ttl: int) -> None:
    """Adjust the TTL on an existing multicast send socket.

    LBRM uses small TTLs to scope repairs to a site (§2.2.1); the node
    runtime calls this per-send when an action carries an explicit TTL.
    """
    sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, max(1, ttl))
