"""Turn-key LBRM clusters over real UDP.

:class:`AioCluster` is the asyncio counterpart of
:class:`repro.simnet.deploy.LbrmDeployment`: it starts a primary logger
(plus optional replicas and site secondaries), a source, and N receivers
as real asyncio endpoints on loopback, wiring the dynamically-assigned
socket addresses together in dependency order (loggers before the
sender, because the sender needs the primary's port).

Site secondaries (``n_secondaries``) reproduce the paper's hierarchy
(§2.2.2) on real sockets: receivers NACK their site logger first, which
answers repairs by unicast from its own log and collapses duplicate
NACKs before escalating to the primary.

With ``use_discovery=True`` receivers locate their logger at runtime via
expanding-ring scoped multicast (§2.2.1) instead of static wiring: each
receiver node carries a :class:`~repro.core.discovery.DiscoveryClient`,
installs the discovered chain on success, and falls back to the static
primary address when every ring up to ``max_ttl`` stays silent.

Used by ``examples/asyncio_live.py``-style demos and the aio integration
tests; on a real LAN, pass each node's interface address instead of the
loopback default.
"""

from __future__ import annotations

import asyncio

from repro.aio.groupmap import GroupDirectory
from repro.aio.node import AioNode, addr_token, parse_token
from repro.core.config import DiscoveryConfig, LbrmConfig
from repro.core.discovery import DiscoveryClient
from repro.core.errors import ConfigError
from repro.core.events import DiscoveryExhausted, Event, LoggerDiscovered
from repro.core.hierarchy import LoggerTree, build_tree
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.retranschannel import RetransChannelConfig
from repro.core.sender import LbrmSender

__all__ = ["AioCluster"]


class AioCluster:
    """A full LBRM group (logger, replicas, source, receivers) on UDP."""

    def __init__(
        self,
        group: str,
        config: LbrmConfig | None = None,
        *,
        n_receivers: int = 2,
        n_replicas: int = 0,
        n_secondaries: int = 0,
        depth: int = 2,
        fanout: int = 8,
        use_discovery: bool = False,
        discovery: DiscoveryConfig | None = None,
        enable_statack: bool = False,
        retrans_channel: RetransChannelConfig | None = None,
        directory: GroupDirectory | None = None,
        interface: str = "127.0.0.1",
        bundling: bool = False,
        max_bundle_bytes: int = 1400,
        max_bundle_delay: float = 0.0,
        legacy_transports: bool = False,
    ) -> None:
        self.group = group
        self.config = config or LbrmConfig()
        self.directory = directory or GroupDirectory()
        self._interface = interface
        # Transport fast-path knobs, applied uniformly to every node in
        # the cluster (see AioNode: with bundling off the wire format is
        # byte-identical to previous releases).
        self._node_kwargs = {
            "bundling": bundling,
            "max_bundle_bytes": max_bundle_bytes,
            "max_bundle_delay": max_bundle_delay,
            "legacy_transports": legacy_transports,
        }
        self._n_receivers = n_receivers
        self._n_replicas = n_replicas
        self._n_secondaries = n_secondaries
        # DESIGN §11: depth>=3 inserts interior repair hubs between the
        # site secondaries (the tree's leaves) and the primary.  The aio
        # tree is *static* — built once from the balanced contiguous
        # construction; runtime re-scoring is a simulator feature (real
        # deployments would re-score from the same TWaitEstimator data).
        if depth < 2:
            raise ConfigError(f"depth must be >= 2, got {depth}")
        if depth > 2 and n_secondaries < 1:
            raise ConfigError("depth > 2 requires n_secondaries >= 1")
        self._depth = depth
        self._fanout = fanout
        self._use_discovery = use_discovery
        self._discovery_config = discovery or DiscoveryConfig()
        self._enable_statack = enable_statack
        self._retrans_channel = retrans_channel

        self.primary: LogServer | None = None
        self.primary_node: AioNode | None = None
        self.replicas: list[LogServer] = []
        self.replica_nodes: list[AioNode] = []
        self.secondaries: list[LogServer] = []
        self.secondary_nodes: list[AioNode] = []
        self.interior_loggers: list[LogServer] = []
        self.interior_nodes: list[AioNode] = []
        self._tree: LoggerTree | None = None
        self._addr_of: dict[str, object] = {}
        self.sender: LbrmSender | None = None
        self.sender_node: AioNode | None = None
        self.receivers: list[LbrmReceiver] = []
        self.receiver_nodes: list[AioNode] = []
        self.discovery_clients: list[DiscoveryClient] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind every endpoint and wire addresses in dependency order."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True

        # Replicas first: the primary needs their addresses.
        for i in range(self._n_replicas):
            node = AioNode(directory=self.directory, interface=self._interface, **self._node_kwargs)
            await node.start()
            replica = LogServer(
                self.group, addr_token=node.token, config=self.config,
                role=LoggerRole.REPLICA, parse_token=parse_token,
            )
            node.machines.append(replica)
            await node.run_machine(replica.start, node.now)
            self.replicas.append(replica)
            self.replica_nodes.append(node)

        self.primary_node = AioNode(directory=self.directory, interface=self._interface, **self._node_kwargs)
        await self.primary_node.start()
        self.primary = LogServer(
            self.group, addr_token=self.primary_node.token, config=self.config,
            role=LoggerRole.PRIMARY, level=0,
            replicas=tuple(n.address for n in self.replica_nodes),
            parse_token=parse_token,
        )
        self.primary_node.machines.append(self.primary)
        await self.primary_node.run_machine(self.primary.start, self.primary_node.now)

        # Interior repair hubs (depth >= 3), built top-down so each
        # level's parents are already bound when its children start.
        # Tree nodes are named abstractly ("leaf{i}", "hub{level}-{k}-
        # logger") and mapped to socket addresses as the nodes bind.
        self._addr_of = {"primary": self.primary_node.address}
        if self._depth > 2:
            self._tree = build_tree(
                "primary",
                [f"leaf{i}" for i in range(self._n_secondaries)],
                depth=self._depth,
                fanout=self._fanout,
            )
            for level in range(1, self._depth - 1):
                for name in self._tree.at_level(level):
                    node = AioNode(
                        directory=self.directory, interface=self._interface, **self._node_kwargs
                    )
                    await node.start()
                    parent_name = self._tree.parent(name)
                    assert parent_name is not None
                    hub = LogServer(
                        self.group, addr_token=node.token, config=self.config,
                        role=LoggerRole.SECONDARY, level=level,
                        parent=self._addr_of[parent_name],
                        # Hub requesters are remote secondaries; a
                        # TTL-scoped re-multicast cannot reach them.
                        site_scoped_repairs=False,
                    )
                    node.machines.append(hub)
                    await node.run_machine(hub.start, node.now)
                    self._addr_of[name] = node.address
                    self.interior_loggers.append(hub)
                    self.interior_nodes.append(node)

        # Site secondaries: each joins the group, logs the stream, and
        # serves nearby receivers; its parent (escalation target) is its
        # tree parent's address — the primary in the flat layout.
        for i in range(self._n_secondaries):
            node = AioNode(directory=self.directory, interface=self._interface, **self._node_kwargs)
            await node.start()
            if self._tree is not None:
                parent_name = self._tree.parent(f"leaf{i}")
                assert parent_name is not None
                parent_address = self._addr_of[parent_name]
                level = self._depth - 1
            else:
                parent_address = self.primary_node.address
                level = 1
            secondary = LogServer(
                self.group, addr_token=node.token, config=self.config,
                role=LoggerRole.SECONDARY, level=level,
                parent=parent_address,
            )
            node.machines.append(secondary)
            await node.run_machine(secondary.start, node.now)
            self.secondaries.append(secondary)
            self.secondary_nodes.append(node)

        self.sender_node = AioNode(directory=self.directory, interface=self._interface, **self._node_kwargs)
        await self.sender_node.start()
        self.sender = LbrmSender(
            self.group, self.config,
            primary=self.primary_node.address,
            replicas=tuple(n.address for n in self.replica_nodes),
            enable_statack=self._enable_statack,
            retrans_channel=self._retrans_channel,
            addr_token=self.sender_node.token,
            # Tuple addresses must re-render as "host:port" tokens after a
            # failover; str() would produce an unparseable repr.
            format_token=addr_token,
        )
        self.sender_node.machines.append(self.sender)
        await self.sender_node.run_machine(self.sender.start, self.sender_node.now)
        self.primary.set_source(self.sender_node.address)
        for replica in self.replicas:
            replica.set_source(self.sender_node.address)
        for secondary in self.secondaries:
            secondary.set_source(self.sender_node.address)
        for hub in self.interior_loggers:
            hub.set_source(self.sender_node.address)

        for i in range(self._n_receivers):
            node = AioNode(directory=self.directory, interface=self._interface, **self._node_kwargs)
            await node.start()
            receiver = LbrmReceiver(
                self.group, self.config.receiver,
                logger_chain=() if self._use_discovery else self._static_chain(i),
                source=self.sender_node.address,
                heartbeat=self.config.heartbeat,
                parse_token=parse_token,
            )
            node.machines.append(receiver)
            await node.run_machine(receiver.start, node.now)
            if self._use_discovery:
                client = DiscoveryClient(
                    self.group, self._discovery_config, parse_token=parse_token
                )
                node.machines.append(client)
                node.on_event = self._make_discovery_handler(receiver)
                self.discovery_clients.append(client)
                await node.run_machine(client.start, node.now)
            self.receivers.append(receiver)
            self.receiver_nodes.append(node)

    def _static_chain(self, receiver_index: int) -> tuple:
        """Recovery chain for one receiver: its site logger, then every
        interior hub on the path up, then the primary (round-robin
        assignment across secondaries)."""
        assert self.primary_node is not None
        if not self.secondary_nodes:
            return (self.primary_node.address,)
        index = receiver_index % len(self.secondary_nodes)
        site = self.secondary_nodes[index]
        if self._tree is not None:
            ancestors = tuple(
                self._addr_of[name] for name in self._tree.chain(f"leaf{index}")[1:]
            )
            return (site.address, *ancestors)
        return (site.address, self.primary_node.address)

    def _make_discovery_handler(self, receiver: LbrmReceiver):
        """Event tap installing the discovered (or fallback) chain."""

        def on_event(event: Event, now: float) -> None:
            assert self.primary_node is not None
            if isinstance(event, LoggerDiscovered):
                chain = (event.logger,)
                if event.logger != self.primary_node.address:
                    chain += (self.primary_node.address,)
                receiver.set_logger_chain(chain)
            elif isinstance(event, DiscoveryExhausted):
                # §2.2.1: every ring stayed silent — fall back to the
                # statically configured primary.
                receiver.set_logger_chain((self.primary_node.address,))

        return on_event

    async def wait_discovery(self, timeout: float = 10.0) -> None:
        """Block until every discovery client resolved (found or gave up)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while any(c.searching for c in self.discovery_clients):
            if asyncio.get_running_loop().time() >= deadline:
                raise TimeoutError("discovery did not resolve in time")
            await asyncio.sleep(0.05)

    async def publish(self, payload: bytes) -> int:
        """Multicast application data; returns the sequence number."""
        assert self.sender is not None and self.sender_node is not None
        await self.sender_node.send(self.sender, payload)
        return self.sender.seq

    async def publish_burst(self, payloads) -> int:
        """Multicast a burst of payloads in one event-loop tick.

        Returns the last sequence number.  With ``bundling=True`` the
        burst leaves the sender coalesced into MTU-sized bundles.
        """
        assert self.sender is not None and self.sender_node is not None
        await self.sender_node.send_many(self.sender, payloads)
        return self.sender.seq

    async def deliveries(self, receiver_index: int, count: int, timeout: float = 3.0):
        """Await ``count`` deliveries at one receiver."""
        node = self.receiver_nodes[receiver_index]
        out = []
        for _ in range(count):
            out.append(await asyncio.wait_for(node.delivery_queue.get(), timeout))
        return out

    @property
    def nodes(self) -> list[AioNode]:
        nodes: list[AioNode] = []
        nodes.extend(self.replica_nodes)
        if self.primary_node is not None:
            nodes.append(self.primary_node)
        nodes.extend(self.interior_nodes)
        nodes.extend(self.secondary_nodes)
        if self.sender_node is not None:
            nodes.append(self.sender_node)
        nodes.extend(self.receiver_nodes)
        return nodes

    async def close(self) -> None:
        for node in self.nodes:
            await node.close()

    async def __aenter__(self) -> "AioCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
