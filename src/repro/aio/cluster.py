"""Turn-key LBRM clusters over real UDP.

:class:`AioCluster` is the asyncio counterpart of
:class:`repro.simnet.deploy.LbrmDeployment`: it starts a primary logger
(plus optional replicas), a source, and N receivers as real asyncio
endpoints on loopback, wiring the dynamically-assigned socket addresses
together in dependency order (loggers before the sender, because the
sender needs the primary's port).

Used by ``examples/asyncio_live.py``-style demos and the aio integration
tests; on a real LAN, pass each node's interface address instead of the
loopback default.
"""

from __future__ import annotations

import asyncio

from repro.aio.groupmap import GroupDirectory
from repro.aio.node import AioNode, parse_token
from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.retranschannel import RetransChannelConfig
from repro.core.sender import LbrmSender

__all__ = ["AioCluster"]


class AioCluster:
    """A full LBRM group (logger, replicas, source, receivers) on UDP."""

    def __init__(
        self,
        group: str,
        config: LbrmConfig | None = None,
        *,
        n_receivers: int = 2,
        n_replicas: int = 0,
        enable_statack: bool = False,
        retrans_channel: RetransChannelConfig | None = None,
        directory: GroupDirectory | None = None,
        interface: str = "127.0.0.1",
    ) -> None:
        self.group = group
        self.config = config or LbrmConfig()
        self.directory = directory or GroupDirectory()
        self._interface = interface
        self._n_receivers = n_receivers
        self._n_replicas = n_replicas
        self._enable_statack = enable_statack
        self._retrans_channel = retrans_channel

        self.primary: LogServer | None = None
        self.primary_node: AioNode | None = None
        self.replicas: list[LogServer] = []
        self.replica_nodes: list[AioNode] = []
        self.sender: LbrmSender | None = None
        self.sender_node: AioNode | None = None
        self.receivers: list[LbrmReceiver] = []
        self.receiver_nodes: list[AioNode] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind every endpoint and wire addresses in dependency order."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True

        # Replicas first: the primary needs their addresses.
        for i in range(self._n_replicas):
            node = AioNode(directory=self.directory, interface=self._interface)
            await node.start()
            replica = LogServer(
                self.group, addr_token=node.token, config=self.config,
                role=LoggerRole.REPLICA,
            )
            node.machines.append(replica)
            await node.run_machine(replica.start, node.now)
            self.replicas.append(replica)
            self.replica_nodes.append(node)

        self.primary_node = AioNode(directory=self.directory, interface=self._interface)
        await self.primary_node.start()
        self.primary = LogServer(
            self.group, addr_token=self.primary_node.token, config=self.config,
            role=LoggerRole.PRIMARY, level=0,
            replicas=tuple(n.address for n in self.replica_nodes),
        )
        self.primary_node.machines.append(self.primary)
        await self.primary_node.run_machine(self.primary.start, self.primary_node.now)

        self.sender_node = AioNode(directory=self.directory, interface=self._interface)
        await self.sender_node.start()
        self.sender = LbrmSender(
            self.group, self.config,
            primary=self.primary_node.address,
            replicas=tuple(n.address for n in self.replica_nodes),
            enable_statack=self._enable_statack,
            retrans_channel=self._retrans_channel,
            addr_token=self.sender_node.token,
        )
        self.sender_node.machines.append(self.sender)
        await self.sender_node.run_machine(self.sender.start, self.sender_node.now)
        self.primary.set_source(self.sender_node.address)
        for replica in self.replicas:
            replica.set_source(self.sender_node.address)

        for i in range(self._n_receivers):
            node = AioNode(directory=self.directory, interface=self._interface)
            await node.start()
            receiver = LbrmReceiver(
                self.group, self.config.receiver,
                logger_chain=(self.primary_node.address,),
                source=self.sender_node.address,
                heartbeat=self.config.heartbeat,
                parse_token=parse_token,
            )
            node.machines.append(receiver)
            await node.run_machine(receiver.start, node.now)
            self.receivers.append(receiver)
            self.receiver_nodes.append(node)

    async def publish(self, payload: bytes) -> int:
        """Multicast application data; returns the sequence number."""
        assert self.sender is not None and self.sender_node is not None
        await self.sender_node.send(self.sender, payload)
        return self.sender.seq

    async def deliveries(self, receiver_index: int, count: int, timeout: float = 3.0):
        """Await ``count`` deliveries at one receiver."""
        node = self.receiver_nodes[receiver_index]
        out = []
        for _ in range(count):
            out.append(await asyncio.wait_for(node.delivery_queue.get(), timeout))
        return out

    @property
    def nodes(self) -> list[AioNode]:
        nodes: list[AioNode] = []
        nodes.extend(self.replica_nodes)
        if self.primary_node is not None:
            nodes.append(self.primary_node)
        if self.sender_node is not None:
            nodes.append(self.sender_node)
        nodes.extend(self.receiver_nodes)
        return nodes

    async def close(self) -> None:
        for node in self.nodes:
            await node.close()

    async def __aenter__(self) -> "AioCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
