"""Asyncio runtime carrying sans-IO LBRM machines over real UDP.

:class:`AioNode` is the asyncio twin of
:class:`repro.simnet.node.SimNode`: it owns one unicast endpoint (the
node's address), joins multicast groups on demand, decodes datagrams,
dispatches them to its protocol machines, executes the returned actions
against real sockets, and keeps machine wakeups scheduled with
``loop.call_at``.

Addresses here are ``(host, port)`` tuples; wire address tokens are
``"host:port"`` strings (see :func:`addr_token` / :func:`parse_token`).
"""

from __future__ import annotations

import asyncio
import socket
from typing import Callable

from repro import obs
from repro.core.actions import (
    Action,
    Deliver,
    JoinGroup,
    LeaveGroup,
    Notify,
    SendMulticast,
    SendUnicast,
)
from repro.core.errors import DecodeError
from repro.core.events import Event
from repro.core.machine import ProtocolMachine
from repro.core.packets import Packet, decode, encode
from repro.aio.groupmap import GroupDirectory
from repro.aio.udp import (
    DEFAULT_INTERFACE,
    make_multicast_recv_socket,
    make_multicast_send_socket,
    make_unicast_socket,
    set_multicast_ttl,
)

__all__ = ["AioNode", "addr_token", "parse_token"]


def addr_token(addr: tuple[str, int]) -> str:
    """Render a ``(host, port)`` address as its wire token."""
    host, port = addr
    return f"{host}:{port}"


def parse_token(token: str) -> tuple[str, int]:
    """Parse a ``host:port`` wire token back into an address tuple.

    Port validation is strict ASCII: ``str.isdigit`` accepts non-ASCII
    decimal digits (e.g. ``"٣"``) that ``int()`` happily parses, which
    would let a malformed token smuggle through; and a syntactically
    clean port above 65535 can never name a UDP endpoint.
    """
    host, _, port = token.rpartition(":")
    if not host or not port or not all("0" <= ch <= "9" for ch in port):
        raise ValueError(f"malformed address token {token!r}")
    value = int(port)
    if value > 65535:
        raise ValueError(f"port out of range (> 65535) in address token {token!r}")
    return host, value


class _Endpoint(asyncio.DatagramProtocol):
    """Datagram protocol funnelling packets into the node.

    Group endpoints remember which group they serve so the node can drop
    datagrams that reached the socket only because two groups share a
    UDP port (wildcard-bind platforms deliver those cross-group).
    """

    def __init__(self, node: "AioNode", group: str | None = None) -> None:
        self._node = node
        self._group = group

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self._node._datagram(data, addr, group=self._group)

    def error_received(self, exc: OSError) -> None:  # pragma: no cover - OS dependent
        self._node._socket_error(exc)


class AioNode:
    """One LBRM endpoint (sender, logger, or receiver) on real UDP."""

    def __init__(
        self,
        machines: list[ProtocolMachine] | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        interface: str = DEFAULT_INTERFACE,
        directory: GroupDirectory | None = None,
        on_deliver: Callable[[Deliver, float], None] | None = None,
        on_event: Callable[[Event, float], None] | None = None,
        on_send: Callable[[Action, float], None] | None = None,
    ) -> None:
        self.machines: list[ProtocolMachine] = list(machines or [])
        self._host = host
        self._want_port = port
        self._interface = interface
        self._directory = directory or GroupDirectory()
        self._on_deliver = on_deliver
        self._on_event = on_event
        # Observation tap on outbound traffic (SendUnicast/SendMulticast),
        # used by the live invariant oracle to timestamp source activity
        # without wrapping transports.
        self._on_send = on_send

        self._loop: asyncio.AbstractEventLoop | None = None
        self._unicast_transport: asyncio.DatagramTransport | None = None
        self._mcast_send_sock: socket.socket | None = None
        self._mcast_send_transport: asyncio.DatagramTransport | None = None
        self._group_transports: dict[str, asyncio.DatagramTransport] = {}
        self._wakeup_handle: asyncio.TimerHandle | None = None
        self._addr: tuple[str, int] | None = None
        self._closed = False

        self.delivered: list[Deliver] = []
        self.delivery_queue: asyncio.Queue[Deliver] = asyncio.Queue()
        self.events: list[Event] = []
        self.stats = obs.stat_counters(
            "aio.node",
            {
                "rx": 0,
                "tx_unicast": 0,
                "tx_multicast": 0,
                "decode_errors": 0,
                "socket_errors": 0,
                "group_mismatches": 0,
            },
        )

    # -- introspection ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """This node's unicast address (valid after :meth:`start`)."""
        if self._addr is None:
            raise RuntimeError("node not started")
        return self._addr

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran — the live twin of a crashed node."""
        return self._closed

    @property
    def on_event(self) -> Callable[[Event, float], None] | None:
        return self._on_event

    @on_event.setter
    def on_event(self, fn: Callable[[Event, float], None] | None) -> None:
        self._on_event = fn

    @property
    def on_send(self) -> "Callable[[Action, float], None] | None":
        return self._on_send

    @on_send.setter
    def on_send(self, fn: "Callable[[Action, float], None] | None") -> None:
        self._on_send = fn

    @property
    def token(self) -> str:
        return addr_token(self.address)

    @property
    def now(self) -> float:
        assert self._loop is not None
        return self._loop.time()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind sockets and call each machine's ``start`` hook."""
        self._loop = asyncio.get_running_loop()
        usock = make_unicast_socket(self._host, self._want_port)
        self._addr = usock.getsockname()
        self._unicast_transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _Endpoint(self), sock=usock
        )
        self._mcast_send_sock = make_multicast_send_socket(self._interface)
        self._mcast_send_transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _Endpoint(self), sock=self._mcast_send_sock
        )
        for machine in self.machines:
            start = getattr(machine, "start", None)
            if callable(start):
                await self._execute(start(self.now))
        self._reschedule()

    async def close(self) -> None:
        """Tear down sockets and timers."""
        self._closed = True
        if self._wakeup_handle is not None:
            self._wakeup_handle.cancel()
            self._wakeup_handle = None
        for transport in self._group_transports.values():
            transport.close()
        self._group_transports.clear()
        if self._unicast_transport is not None:
            self._unicast_transport.close()
        if self._mcast_send_transport is not None:
            self._mcast_send_transport.close()
        # Let asyncio flush transport close callbacks.
        await asyncio.sleep(0)

    # -- app API ----------------------------------------------------------

    async def send(self, machine, payload: bytes) -> None:
        """Have a sender machine multicast application data now."""
        await self._execute(machine.send(payload, self.now))
        self._reschedule()

    async def join_group(self, group: str) -> None:
        """Subscribe this node to ``group``'s multicast address."""
        if group in self._group_transports:
            return
        assert self._loop is not None
        addr, port = self._directory.resolve(group)
        sock = make_multicast_recv_socket(addr, port, self._interface)
        transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _Endpoint(self, group=group), sock=sock
        )
        self._group_transports[group] = transport

    def leave_group(self, group: str) -> None:
        transport = self._group_transports.pop(group, None)
        if transport is not None:
            transport.close()

    async def run_machine(self, fn, *args) -> None:
        """Execute ``fn(*args)`` returning actions, then reschedule."""
        await self._execute(fn(*args))
        self._reschedule()

    # -- datagram path ----------------------------------------------------

    def _socket_error(self, exc: OSError) -> None:
        """Count a transport-reported socket error, mirrored into obs.

        The registry counter is resolved at error time (not construction
        time) so live socket trouble shows up in ``repro metrics`` even
        when recording was switched on after the node was built.
        """
        self.stats["socket_errors"] += 1
        obs.registry().counter("aio.socket_errors").inc()

    def _datagram(self, data: bytes, addr: tuple[str, int], group: str | None = None) -> None:
        if self._closed:
            return
        try:
            packet = decode(data)
        except DecodeError:
            self.stats["decode_errors"] += 1
            return
        if group is not None:
            # Wildcard-bound platforms deliver every group sharing this
            # port to this socket; accept only the endpoint's own group
            # (or its subchannels, e.g. the "<group>/retrans" channel,
            # whose packets carry the base group name).
            pgroup = getattr(packet, "group", None)
            if pgroup is not None and pgroup != group and not group.startswith(pgroup + "/"):
                self.stats["group_mismatches"] += 1
                return
        self.stats["rx"] += 1
        now = self.now
        actions: list[Action] = []
        for machine in self.machines:
            actions.extend(machine.handle(packet, addr, now))
        # Synchronous execution: sends on datagram transports don't block.
        self._execute_sync(actions)
        self._reschedule()

    def _poll(self) -> None:
        if self._closed:
            return
        self._wakeup_handle = None
        now = self.now
        actions: list[Action] = []
        for machine in self.machines:
            actions.extend(machine.poll(now))
        self._execute_sync(actions)
        self._reschedule()

    # -- action execution ----------------------------------------------------

    async def _execute(self, actions: list[Action]) -> None:
        """Execute actions, awaiting group joins (socket setup)."""
        for action in actions:
            if isinstance(action, JoinGroup):
                await self.join_group(action.group)
            else:
                self._execute_sync([action])

    def _execute_sync(self, actions: list[Action]) -> None:
        for action in actions:
            if isinstance(action, SendUnicast):
                self.stats["tx_unicast"] += 1
                assert self._unicast_transport is not None
                if self._on_send is not None:
                    self._on_send(action, self.now)
                try:
                    self._unicast_transport.sendto(encode(action.packet), action.dest)
                except OSError as exc:
                    self._socket_error(exc)
            elif isinstance(action, SendMulticast):
                if self._on_send is not None:
                    self._on_send(action, self.now)
                self._send_multicast(action)
            elif isinstance(action, Deliver):
                self.delivered.append(action)
                self.delivery_queue.put_nowait(action)
                if self._on_deliver is not None:
                    self._on_deliver(action, self.now)
            elif isinstance(action, Notify):
                self.events.append(action.event)
                if self._on_event is not None:
                    self._on_event(action.event, self.now)
            elif isinstance(action, JoinGroup):
                # From a sync context (poll/datagram): schedule the join.
                assert self._loop is not None
                self._loop.create_task(self.join_group(action.group))
            elif isinstance(action, LeaveGroup):
                self.leave_group(action.group)
            else:  # pragma: no cover - future action types
                raise TypeError(f"unknown action {action!r}")

    def _send_multicast(self, action: SendMulticast) -> None:
        assert self._mcast_send_transport is not None and self._mcast_send_sock is not None
        self.stats["tx_multicast"] += 1
        if action.ttl is not None:
            set_multicast_ttl(self._mcast_send_sock, action.ttl)
        addr, port = self._directory.resolve(action.group)
        try:
            self._mcast_send_transport.sendto(encode(action.packet), (addr, port))
        except OSError as exc:
            self._socket_error(exc)
        finally:
            if action.ttl is not None:
                set_multicast_ttl(self._mcast_send_sock, 1)

    # -- wakeup plumbing ----------------------------------------------------

    def _reschedule(self) -> None:
        if self._closed or self._loop is None:
            return
        deadlines = [m.next_wakeup() for m in self.machines]
        deadlines = [d for d in deadlines if d is not None]
        next_due = min(deadlines) if deadlines else None
        if next_due is None:
            if self._wakeup_handle is not None:
                self._wakeup_handle.cancel()
                self._wakeup_handle = None
            return
        if self._wakeup_handle is not None:
            if self._wakeup_handle.when() <= next_due:
                return
            self._wakeup_handle.cancel()
        self._wakeup_handle = self._loop.call_at(next_due, self._poll)
