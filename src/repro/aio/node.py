"""Asyncio runtime carrying sans-IO LBRM machines over real UDP.

:class:`AioNode` is the asyncio twin of
:class:`repro.simnet.node.SimNode`: it owns one unicast endpoint (the
node's address), joins multicast groups on demand, decodes datagrams,
dispatches them to its protocol machines, executes the returned actions
against real sockets, and keeps machine wakeups scheduled with
``loop.call_at``.

The datagram path is built for throughput:

* **RX zero-copy** — sockets are read with ``recvfrom_into`` into a
  preallocated :class:`~repro.aio.udp.ReceiveRing` (via
  ``loop.add_reader``, not asyncio transports, which allocate a fresh
  ``bytes`` per datagram), and packets decode straight out of the
  receive buffer with :func:`~repro.core.packets.decode_from`.
* **TX coalescing** — with ``bundling=True``, outbound packets queue
  per destination and flush once per event-loop tick as bundle
  datagrams (:func:`~repro.core.packets.encode_bundle`), bounded by
  ``max_bundle_bytes`` and ``max_bundle_delay``.  With ``bundling=False``
  (the default) every packet goes out as its own datagram, byte-identical
  to what previous releases put on the wire.

Addresses here are ``(host, port)`` tuples; wire address tokens are
``"host:port"`` strings (see :func:`addr_token` / :func:`parse_token`).
"""

from __future__ import annotations

import asyncio
import socket
from typing import Callable

from repro import obs
from repro.core.actions import (
    Action,
    Deliver,
    JoinGroup,
    LeaveGroup,
    Notify,
    SendMulticast,
    SendUnicast,
)
from repro.core.errors import DecodeError
from repro.core.events import Event
from repro.core.machine import ProtocolMachine
from repro.core.packets import (
    BUNDLE_FRAME_OVERHEAD,
    BUNDLE_OVERHEAD,
    decode,
    decode_from,
    encode,
    encode_bundle,
    encode_uncached,
    is_bundle,
    iter_bundle,
)
from repro.aio.groupmap import GroupDirectory
from repro.aio.udp import (
    DEFAULT_INTERFACE,
    ReceiveRing,
    make_multicast_recv_socket,
    make_multicast_send_socket,
    make_unicast_socket,
    set_multicast_ttl,
)

__all__ = ["AioNode", "addr_token", "parse_token"]

# Datagrams drained per readable callback before yielding back to the
# event loop — epoll is level-triggered, so a still-full socket fires
# again on the next loop iteration; the cap keeps one busy socket from
# starving timers and the other sockets.
_RX_BATCH = 64


def addr_token(addr: tuple[str, int]) -> str:
    """Render a ``(host, port)`` address as its wire token."""
    host, port = addr
    return f"{host}:{port}"


def parse_token(token: str) -> tuple[str, int]:
    """Parse a ``host:port`` wire token back into an address tuple.

    Port validation is strict ASCII: ``str.isdigit`` accepts non-ASCII
    decimal digits (e.g. ``"٣"``) that ``int()`` happily parses, which
    would let a malformed token smuggle through; and a syntactically
    clean port above 65535 can never name a UDP endpoint.
    """
    host, _, port = token.rpartition(":")
    if not host or not port or not all("0" <= ch <= "9" for ch in port):
        raise ValueError(f"malformed address token {token!r}")
    value = int(port)
    if value > 65535:
        raise ValueError(f"port out of range (> 65535) in address token {token!r}")
    return host, value


class _Endpoint(asyncio.DatagramProtocol):
    """Pre-fast-path datagram protocol funnelling packets into the node.

    Retained (like :class:`~repro.simnet.engine.ReferenceSimulator` and
    the legacy per-field codecs) as the measurable pre-bundling
    baseline: ``AioNode(legacy_transports=True)`` receives through
    asyncio's transport machinery — one ``bytes`` allocation and one
    protocol callback per datagram — which is what ``repro bench --aio``
    reports the fast path's speedup against.
    """

    def __init__(self, node: "AioNode", group: str | None = None) -> None:
        self._node = node
        self._group = group

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self._node._datagram_legacy(data, addr, group=self._group)

    def error_received(self, exc: OSError) -> None:  # pragma: no cover - OS dependent
        self._node._socket_error(exc)


class AioNode:
    """One LBRM endpoint (sender, logger, or receiver) on real UDP."""

    def __init__(
        self,
        machines: list[ProtocolMachine] | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        interface: str = DEFAULT_INTERFACE,
        directory: GroupDirectory | None = None,
        on_deliver: Callable[[Deliver, float], None] | None = None,
        on_event: Callable[[Event, float], None] | None = None,
        on_send: Callable[[Action, float], None] | None = None,
        bundling: bool = False,
        max_bundle_bytes: int = 1400,
        max_bundle_delay: float = 0.0,
        max_queued_packets: int = 512,
        legacy_transports: bool = False,
    ) -> None:
        self.machines: list[ProtocolMachine] = list(machines or [])
        self._host = host
        self._want_port = port
        self._interface = interface
        self._directory = directory or GroupDirectory()
        self._on_deliver = on_deliver
        self._on_event = on_event
        # Observation tap on outbound traffic (SendUnicast/SendMulticast),
        # used by the live invariant oracle to timestamp source activity
        # without wrapping transports.
        self._on_send = on_send

        # TX coalescing (§ module docstring).  max_bundle_bytes bounds
        # the *datagram*, so it must at least fit the bundle header and
        # one framed packet; the 65507 ceiling is UDP's own payload cap.
        if not 128 <= max_bundle_bytes <= 65507:
            raise ValueError("max_bundle_bytes must be within [128, 65507]")
        if max_queued_packets < 1:
            raise ValueError("max_queued_packets must be >= 1")
        self._bundling = bool(bundling)
        self._max_bundle_bytes = max_bundle_bytes
        # Frames (u16 length + packet) must fit beside the bundle header.
        self._frame_budget = max_bundle_bytes - BUNDLE_OVERHEAD
        self._max_bundle_delay = max_bundle_delay
        self._max_queued_packets = max_queued_packets
        # Per-destination send queues: ("u", dest) for unicast,
        # ("m", group, ttl) for multicast (distinct TTLs cannot share a
        # datagram).  Values are lists of encoded wires.
        self._tx_queues: dict[tuple, list[bytes]] = {}
        self._tx_sizes: dict[tuple, int] = {}
        self._flush_handle: asyncio.Handle | asyncio.TimerHandle | None = None
        # Occupancy accounting: packets-per-flushed-datagram histogram,
        # kept locally (cheap to read in benchmarks) and mirrored into
        # the obs registry while recording.
        self.bundle_occupancy: dict[int, int] = {}

        # Pre-fast-path RX/TX via asyncio transports + copy-normalizing
        # decode(); the retained baseline `repro bench --aio` measures
        # against (see _Endpoint).  Mutually exclusive with bundling.
        if legacy_transports and bundling:
            raise ValueError("legacy_transports is the pre-bundling baseline; "
                             "it cannot coalesce")
        self._legacy_transports = bool(legacy_transports)
        if legacy_transports:
            # Route every action through the retained pre-fast-path
            # executor (isinstance dispatch, per-action encode, transport
            # sendto) so the baseline's TX cost is the old TX cost.
            self._execute_sync = self._execute_sync_legacy

        self._loop: asyncio.AbstractEventLoop | None = None
        self._ring: ReceiveRing | None = None
        self._unicast_sock: socket.socket | None = None
        self._mcast_send_sock: socket.socket | None = None
        self._unicast_transport: asyncio.DatagramTransport | None = None
        self._mcast_send_transport: asyncio.DatagramTransport | None = None
        self._group_transports: dict[str, asyncio.DatagramTransport] = {}
        self._mcast_ttl = 1  # last TTL applied to the send socket
        self._group_socks: dict[str, socket.socket] = {}
        self._wakeup_handle: asyncio.TimerHandle | None = None
        self._addr: tuple[str, int] | None = None
        self._closed = False

        self.delivered: list[Deliver] = []
        self.delivery_queue: asyncio.Queue[Deliver] = asyncio.Queue()
        self.events: list[Event] = []
        self.stats = obs.stat_counters(
            "aio.node",
            {
                "rx": 0,
                "rx_datagrams": 0,
                "rx_bundles": 0,
                "tx_unicast": 0,
                "tx_multicast": 0,
                "tx_datagrams": 0,
                "tx_bundles": 0,
                "tx_coalesced_packets": 0,
                "tx_bundle_drops": 0,
                "decode_errors": 0,
                "socket_errors": 0,
                "group_mismatches": 0,
            },
        )

    # -- introspection ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """This node's unicast address (valid after :meth:`start`)."""
        if self._addr is None:
            raise RuntimeError("node not started")
        return self._addr

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran — the live twin of a crashed node."""
        return self._closed

    @property
    def bundling(self) -> bool:
        """Whether outbound traffic is coalesced into bundle datagrams."""
        return self._bundling

    @property
    def on_event(self) -> Callable[[Event, float], None] | None:
        return self._on_event

    @on_event.setter
    def on_event(self, fn: Callable[[Event, float], None] | None) -> None:
        self._on_event = fn

    @property
    def on_send(self) -> "Callable[[Action, float], None] | None":
        return self._on_send

    @on_send.setter
    def on_send(self, fn: "Callable[[Action, float], None] | None") -> None:
        self._on_send = fn

    @property
    def token(self) -> str:
        return addr_token(self.address)

    @property
    def now(self) -> float:
        assert self._loop is not None
        return self._loop.time()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind sockets and call each machine's ``start`` hook."""
        self._loop = asyncio.get_running_loop()
        self._ring = ReceiveRing()
        usock = make_unicast_socket(self._host, self._want_port)
        self._addr = usock.getsockname()
        self._unicast_sock = usock
        msock = make_multicast_send_socket(self._interface)
        self._mcast_send_sock = msock
        self._mcast_ttl = 1
        if self._legacy_transports:
            self._unicast_transport, _ = await self._loop.create_datagram_endpoint(
                lambda: _Endpoint(self), sock=usock
            )
            self._mcast_send_transport, _ = await self._loop.create_datagram_endpoint(
                lambda: _Endpoint(self), sock=msock
            )
        else:
            self._loop.add_reader(usock.fileno(), self._on_readable, usock, None)
            # Datagrams aimed at the send socket's ephemeral port still
            # reach the node (parity with the transport-based endpoint).
            self._loop.add_reader(msock.fileno(), self._on_readable, msock, None)
        for machine in self.machines:
            start = getattr(machine, "start", None)
            if callable(start):
                await self._execute(start(self.now))
        self._reschedule()

    async def close(self) -> None:
        """Flush coalesced traffic, then tear down sockets and timers."""
        if self._closed:
            return
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        for key in list(self._tx_queues):
            self._flush_key(key)
        self._closed = True
        if self._wakeup_handle is not None:
            self._wakeup_handle.cancel()
            self._wakeup_handle = None
        loop = self._loop
        if self._legacy_transports:
            for transport in self._group_transports.values():
                transport.close()
            self._group_transports.clear()
            self._group_socks.clear()
            for transport in (self._unicast_transport, self._mcast_send_transport):
                if transport is not None:
                    transport.close()
            self._unicast_transport = None
            self._mcast_send_transport = None
        else:
            for sock in self._group_socks.values():
                if loop is not None:
                    loop.remove_reader(sock.fileno())
                sock.close()
            self._group_socks.clear()
            for sock in (self._unicast_sock, self._mcast_send_sock):
                if sock is not None:
                    if loop is not None:
                        loop.remove_reader(sock.fileno())
                    sock.close()
        self._unicast_sock = None
        self._mcast_send_sock = None
        # Let any already-queued reader callbacks observe the close.
        await asyncio.sleep(0)

    # -- app API ----------------------------------------------------------

    async def send(self, machine, payload: bytes) -> None:
        """Have a sender machine multicast application data now."""
        await self._execute(machine.send(payload, self.now))
        self._reschedule()

    async def send_many(self, machine, payloads) -> None:
        """Multicast a burst of application payloads in one tick.

        Semantically ``send`` per payload, but with one timestamp, one
        action batch, and one reschedule for the whole burst — the
        arrival shape (a simulation frame's worth of entity updates)
        the TX coalescer packs into bundles.
        """
        now = self.now
        actions: list[Action] = []
        for payload in payloads:
            actions.extend(machine.send(payload, now))
        await self._execute(actions)
        self._reschedule()

    async def join_group(self, group: str) -> None:
        """Subscribe this node to ``group``'s multicast address."""
        if group in self._group_socks:
            return
        assert self._loop is not None
        addr, port = self._directory.resolve(group)
        sock = make_multicast_recv_socket(addr, port, self._interface)
        self._group_socks[group] = sock
        if self._legacy_transports:
            transport, _ = await self._loop.create_datagram_endpoint(
                lambda: _Endpoint(self, group=group), sock=sock
            )
            self._group_transports[group] = transport
        else:
            self._loop.add_reader(sock.fileno(), self._on_readable, sock, group)

    def leave_group(self, group: str) -> None:
        sock = self._group_socks.pop(group, None)
        transport = self._group_transports.pop(group, None)
        if transport is not None:
            transport.close()
        elif sock is not None:
            if self._loop is not None:
                self._loop.remove_reader(sock.fileno())
            sock.close()

    async def run_machine(self, fn, *args) -> None:
        """Execute ``fn(*args)`` returning actions, then reschedule."""
        await self._execute(fn(*args))
        self._reschedule()

    # -- datagram path ----------------------------------------------------

    def _socket_error(self, exc: OSError) -> None:
        """Count a socket error, mirrored into obs.

        The registry counter is resolved at error time (not construction
        time) so live socket trouble shows up in ``repro metrics`` even
        when recording was switched on after the node was built.
        """
        self.stats["socket_errors"] += 1
        obs.registry().counter("aio.socket_errors").inc()

    def _on_readable(self, sock: socket.socket, group: str | None) -> None:
        """Drain ``sock`` into the receive ring — the zero-copy RX path."""
        if self._closed:
            return
        ring = self._ring
        assert ring is not None
        recv_into = sock.recvfrom_into
        for _ in range(_RX_BATCH):
            buf = ring.acquire()
            try:
                nbytes, addr = recv_into(buf)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self._socket_error(exc)
                return
            self._datagram(buf[:nbytes], addr, group=group)
            if self._closed:
                return

    def _datagram(self, data, addr: tuple[str, int], group: str | None = None) -> None:
        """Dispatch one received datagram (plain or bundled).

        ``data`` may be any buffer (the RX path passes ring-backed
        memoryviews); packets are decoded in place and nothing retains
        the buffer after this returns.
        """
        if self._closed:
            return
        stats = self.stats
        stats["rx_datagrams"] += 1
        now = self.now
        if is_bundle(data):
            try:
                frames = iter_bundle(data)
            except DecodeError:
                stats["decode_errors"] += 1
                return
            stats["rx_bundles"] += 1
            for frame in frames:
                self._packet_in(frame, addr, group, now)
        else:
            self._packet_in(data, addr, group, now)
        self._reschedule()

    def _datagram_legacy(self, data: bytes, addr: tuple[str, int], group: str | None = None) -> None:
        """The pre-fast-path receive body, kept verbatim for the
        ``legacy_transports`` baseline: copy-normalizing ``decode``, a
        per-packet ``self.now`` read, the unconditional machine loop,
        and an unconditional execute — exactly what every datagram cost
        before the fast path landed.
        """
        if self._closed:
            return
        self.stats["rx_datagrams"] += 1
        try:
            packet = decode(data)
        except DecodeError:
            self.stats["decode_errors"] += 1
            return
        if group is not None:
            pgroup = getattr(packet, "group", None)
            if pgroup is not None and pgroup != group and not group.startswith(pgroup + "/"):
                self.stats["group_mismatches"] += 1
                return
        self.stats["rx"] += 1
        now = self.now
        actions: list[Action] = []
        for machine in self.machines:
            actions.extend(machine.handle(packet, addr, now))
        # Synchronous execution: sends on datagram transports don't block.
        self._execute_sync(actions)
        self._reschedule()

    def _packet_in(self, data, addr: tuple[str, int], group: str | None, now: float) -> None:
        stats = self.stats
        try:
            # decode_from parses straight out of the receive buffer (the
            # legacy path goes through _datagram_legacy instead).
            packet = decode_from(data)
        except DecodeError:
            stats["decode_errors"] += 1
            return
        if group is not None:
            # Wildcard-bound platforms deliver every group sharing this
            # port to this socket; accept only the endpoint's own group
            # (or its subchannels, e.g. the "<group>/retrans" channel,
            # whose packets carry the base group name).
            pgroup = getattr(packet, "group", None)
            if pgroup is not None and pgroup != group and not group.startswith(pgroup + "/"):
                stats["group_mismatches"] += 1
                return
        stats["rx"] += 1
        machines = self.machines
        if len(machines) == 1:
            actions = machines[0].handle(packet, addr, now)
        else:
            actions = []
            for machine in machines:
                actions.extend(machine.handle(packet, addr, now))
        # Synchronous execution: UDP sends don't block.
        if actions:
            self._execute_sync(actions)

    def _poll(self) -> None:
        if self._closed:
            return
        self._wakeup_handle = None
        now = self.now
        actions: list[Action] = []
        for machine in self.machines:
            actions.extend(machine.poll(now))
        self._execute_sync(actions)
        self._reschedule()

    # -- action execution ----------------------------------------------------

    async def _execute(self, actions: list[Action]) -> None:
        """Execute actions, awaiting group joins (socket setup)."""
        for action in actions:
            if isinstance(action, JoinGroup):
                await self.join_group(action.group)
            else:
                self._execute_sync([action])

    def _execute_sync(self, actions: list[Action]) -> None:
        # Repair fan-outs emit the same packet to many destinations;
        # encode once per distinct packet object and reuse the wire
        # across consecutive sends (the codec memo would also hit, but a
        # local identity check skips even the cache probe).  The encode
        # memo is deliberately bypassed: live traffic is dominated by
        # unique state updates, for which hashing the packet and
        # evicting a cache entry per send is pure overhead — the hoist
        # already covers the fan-out case the memo existed for.  Legacy
        # nodes never reach this executor: __init__ rebinds their
        # _execute_sync to _execute_sync_legacy.
        last_packet = None
        last_wire = b""
        for action in actions:
            cls = type(action)
            if cls is SendUnicast or cls is SendMulticast:
                packet = action.packet
                if packet is last_packet:
                    wire = last_wire
                else:
                    wire = encode_uncached(packet)
                    last_packet, last_wire = packet, wire
                if self._on_send is not None:
                    self._on_send(action, self.now)
                if cls is SendUnicast:
                    self.stats["tx_unicast"] += 1
                    assert self._unicast_sock is not None
                    if self._bundling:
                        self._queue_wire(("u", action.dest), wire)
                    else:
                        self._transmit_unicast(wire, action.dest)
                else:
                    self.stats["tx_multicast"] += 1
                    assert self._mcast_send_sock is not None
                    if self._bundling:
                        self._queue_wire(("m", action.group, action.ttl), wire)
                    else:
                        self._transmit_multicast(wire, action.group, action.ttl)
            elif cls is Deliver:
                self.delivered.append(action)
                self.delivery_queue.put_nowait(action)
                if self._on_deliver is not None:
                    self._on_deliver(action, self.now)
            elif cls is Notify:
                self.events.append(action.event)
                if self._on_event is not None:
                    self._on_event(action.event, self.now)
            elif cls is JoinGroup:
                # From a sync context (poll/datagram): schedule the join.
                assert self._loop is not None
                self._loop.create_task(self.join_group(action.group))
            elif cls is LeaveGroup:
                self.leave_group(action.group)
            else:  # pragma: no cover - future action types
                raise TypeError(f"unknown action {action!r}")

    def _execute_sync_legacy(self, actions: list[Action]) -> None:
        """The pre-fast-path executor, kept verbatim for the
        ``legacy_transports`` baseline: isinstance dispatch, one
        ``encode`` per action (no hoist), sends through the asyncio
        transport, and set/reset ``setsockopt`` per scoped multicast
        (no TTL cache) — the TX cost every action carried before the
        fast path landed.
        """
        for action in actions:
            if isinstance(action, SendUnicast):
                self.stats["tx_unicast"] += 1
                self.stats["tx_datagrams"] += 1
                assert self._unicast_transport is not None
                if self._on_send is not None:
                    self._on_send(action, self.now)
                try:
                    self._unicast_transport.sendto(encode(action.packet), action.dest)
                except OSError as exc:
                    self._socket_error(exc)
            elif isinstance(action, SendMulticast):
                if self._on_send is not None:
                    self._on_send(action, self.now)
                self._send_multicast_legacy(action)
            elif isinstance(action, Deliver):
                self.delivered.append(action)
                self.delivery_queue.put_nowait(action)
                if self._on_deliver is not None:
                    self._on_deliver(action, self.now)
            elif isinstance(action, Notify):
                self.events.append(action.event)
                if self._on_event is not None:
                    self._on_event(action.event, self.now)
            elif isinstance(action, JoinGroup):
                assert self._loop is not None
                self._loop.create_task(self.join_group(action.group))
            elif isinstance(action, LeaveGroup):
                self.leave_group(action.group)
            else:  # pragma: no cover - future action types
                raise TypeError(f"unknown action {action!r}")

    def _send_multicast_legacy(self, action: SendMulticast) -> None:
        assert self._mcast_send_transport is not None and self._mcast_send_sock is not None
        self.stats["tx_multicast"] += 1
        self.stats["tx_datagrams"] += 1
        if action.ttl is not None:
            set_multicast_ttl(self._mcast_send_sock, action.ttl)
        addr, port = self._directory.resolve(action.group)
        try:
            self._mcast_send_transport.sendto(encode(action.packet), (addr, port))
        except OSError as exc:
            self._socket_error(exc)
        finally:
            if action.ttl is not None:
                set_multicast_ttl(self._mcast_send_sock, 1)

    # -- raw transmission -------------------------------------------------

    def _apply_ttl(self, ttl: int) -> None:
        """Set the multicast TTL iff it differs from the last applied one.

        Steady-state traffic reuses one TTL, so caching the last value
        turns two ``setsockopt`` syscalls per scoped send (set + reset)
        into zero for unchanged TTLs.
        """
        ttl = max(1, ttl)
        if ttl != self._mcast_ttl:
            assert self._mcast_send_sock is not None
            set_multicast_ttl(self._mcast_send_sock, ttl)
            self._mcast_ttl = ttl

    def _transmit_unicast(self, wire: bytes, dest) -> None:
        self.stats["tx_datagrams"] += 1
        try:
            # Raw sendto: legacy nodes transmit through
            # _execute_sync_legacy (transport sendto) instead.
            self._unicast_sock.sendto(wire, dest)
        except OSError as exc:
            self._socket_error(exc)

    def _transmit_multicast(self, wire: bytes, group: str, ttl: int | None) -> None:
        self._apply_ttl(1 if ttl is None else ttl)
        addr, port = self._directory.resolve(group)
        self.stats["tx_datagrams"] += 1
        try:
            self._mcast_send_sock.sendto(wire, (addr, port))
        except OSError as exc:
            self._socket_error(exc)

    # -- TX coalescing ----------------------------------------------------

    def _queue_wire(self, key: tuple, wire: bytes) -> None:
        """Queue one encoded packet on its destination's bundle."""
        queues = self._tx_queues
        sizes = self._tx_sizes
        queue = queues.get(key)
        if queue is None:
            queue = queues[key] = []
            sizes[key] = 0
        framed = len(wire) + BUNDLE_FRAME_OVERHEAD
        if framed > self._frame_budget:
            # Too big to ever share a datagram: flush what's queued
            # first (per-destination ordering), then send it alone.
            if queue:
                self._flush_key(key)
            self._note_occupancy(1)
            self._transmit_key(key, wire)
            return
        if len(queue) >= self._max_queued_packets:
            # High-water drop policy: the queue holds at most one tick's
            # backlog, so overflow means the loop is badly starved.
            # Dropping here behaves exactly like network loss — which
            # the protocol detects and repairs — instead of growing an
            # unbounded buffer.
            self.stats["tx_bundle_drops"] += 1
            return
        size = sizes[key] + framed
        if queue and size > self._frame_budget:
            self._flush_key(key)
            queue = queues[key]
            size = framed
        queue.append(wire)
        sizes[key] = size
        if self._flush_handle is None:
            assert self._loop is not None
            if self._max_bundle_delay > 0.0:
                self._flush_handle = self._loop.call_later(
                    self._max_bundle_delay, self._flush_bundles
                )
            else:
                self._flush_handle = self._loop.call_soon(self._flush_bundles)

    def _flush_bundles(self) -> None:
        """Once-per-tick flush of every destination's pending bundle."""
        self._flush_handle = None
        if self._closed:
            return
        for key in list(self._tx_queues):
            self._flush_key(key)

    def _flush_key(self, key: tuple) -> None:
        queue = self._tx_queues.get(key)
        if not queue:
            return
        self._tx_queues[key] = []
        self._tx_sizes[key] = 0
        occupancy = len(queue)
        self._note_occupancy(occupancy)
        if occupancy == 1:
            # A lone packet ships unframed — identical bytes to the
            # bundling-off path, and 6 bytes cheaper than a 1-bundle.
            wire = queue[0]
        else:
            wire = encode_bundle(queue)
            self.stats["tx_bundles"] += 1
            self.stats["tx_coalesced_packets"] += occupancy
        self._transmit_key(key, wire)

    def _transmit_key(self, key: tuple, wire: bytes) -> None:
        if key[0] == "u":
            self._transmit_unicast(wire, key[1])
        else:
            self._transmit_multicast(wire, key[1], key[2])

    def _note_occupancy(self, occupancy: int) -> None:
        counts = self.bundle_occupancy
        counts[occupancy] = counts.get(occupancy, 0) + 1
        reg = obs.registry()
        if reg.enabled:
            reg.histogram("aio.bundle_occupancy").observe(occupancy)
            if occupancy > 1:
                reg.counter("aio.tx_bundles").inc()
                reg.counter("aio.tx_coalesced_packets").inc(occupancy)

    # -- wakeup plumbing ----------------------------------------------------

    def _reschedule(self) -> None:
        if self._closed or self._loop is None:
            return
        deadlines = [m.next_wakeup() for m in self.machines]
        deadlines = [d for d in deadlines if d is not None]
        next_due = min(deadlines) if deadlines else None
        if next_due is None:
            if self._wakeup_handle is not None:
                self._wakeup_handle.cancel()
                self._wakeup_handle = None
            return
        if self._wakeup_handle is not None:
            if self._wakeup_handle.when() <= next_due:
                return
            self._wakeup_handle.cancel()
        self._wakeup_handle = self._loop.call_at(next_due, self._poll)
