"""Real asyncio UDP multicast transport for LBRM.

The same sans-IO machines that run in :mod:`repro.simnet` run here over
actual sockets — multicast on the loopback interface by default, so the
full protocol (heartbeats, logging, recovery, statistical acking) can be
demonstrated end-to-end on one machine.  See
``examples/asyncio_live.py``.
"""

from repro.aio.cluster import AioCluster
from repro.aio.groupmap import GroupDirectory
from repro.aio.node import AioNode, addr_token, parse_token
from repro.aio.udp import (
    DEFAULT_INTERFACE,
    make_multicast_recv_socket,
    make_multicast_send_socket,
    make_unicast_socket,
    set_multicast_ttl,
)

__all__ = [
    "AioCluster",
    "GroupDirectory",
    "AioNode",
    "addr_token",
    "parse_token",
    "DEFAULT_INTERFACE",
    "make_multicast_recv_socket",
    "make_multicast_send_socket",
    "make_unicast_socket",
    "set_multicast_ttl",
]
