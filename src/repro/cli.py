"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``       — package overview, parameter defaults, module map.
``quickstart`` — run the simulated-WAN demo (site loss, 1-NACK repair).
``dis``        — the destroyed-bridge DIS scenario.
``ticker``     — stock quotes with statistical acknowledgement.
``failover``   — primary-log death and replica promotion.
``live``       — the same protocol over real UDP multicast (loopback).
``headline``   — print the paper's headline numbers, recomputed live.
``metrics``    — run a canned loss scenario with observability on and
                 dump the metrics registry (text or JSON).
``bench``      — run the performance harness (fast vs reference engine)
                 and write machine-readable ``BENCH_*.json`` results.
``chaos``      — run the randomized fault-injection conformance campaign
                 (seeded schedules, invariant oracle, reproducer seeds).
``hierarchy-chaos`` — the same conformance contract on k-level repair
                 trees: hub crashes, mid-epoch re-parenting mutations,
                 cross-engine digests that include the tree surgery.
``failover-sweep`` — exhaustively crash the primary at every distinct
                 schedule point and grade each replay (zero-loss proof).
``aio-smoke``  — run a real-UDP cluster (site secondary + replica) under
                 the live invariant oracle and write a JSON report;
                 degrades to a "skipped" report where multicast is
                 unroutable (hosted CI).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_info(args: argparse.Namespace) -> int:
    from repro import __version__
    from repro.core.config import LbrmConfig

    cfg = LbrmConfig.paper_defaults()
    print(f"repro {__version__} — Log-Based Receiver-Reliable Multicast (SIGCOMM '95)")
    print()
    print("paper defaults:")
    print(f"  heartbeat: h_min={cfg.heartbeat.h_min}s h_max={cfg.heartbeat.h_max}s "
          f"backoff={cfg.heartbeat.backoff}")
    print(f"  receiver:  MaxIT={cfg.receiver.max_idle_time}s "
          f"(watchdog slack {cfg.receiver.watchdog_slack}x)")
    print(f"  statack:   k={cfg.statack.k_ackers} ackers, alpha={cfg.statack.alpha}, "
          f"epoch={cfg.statack.epoch_length} packets")
    print()
    print("modules: repro.core (protocol) | repro.simnet (WAN simulator) | "
          "repro.aio (real UDP) |")
    print("         repro.baselines (fixed-hb, centralized, SRM, pos-ACK) | "
          "repro.apps | repro.analysis")
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    from repro.analysis import overhead_ratio, variable_heartbeat_count
    from repro.apps.dis import scenario_packet_rates

    rates = scenario_packet_rates()
    print("headline numbers, recomputed:")
    print(f"  variable heartbeats per 120s idle interval: "
          f"{variable_heartbeat_count(120.0)} (fixed scheme: 479)")
    print(f"  heartbeat bandwidth reduction at dt=120s:   "
          f"{overhead_ratio(120.0):.1f}x  (paper: 53.3-53.4x)")
    print(f"  STOW-97 scenario total, fixed scheme:       {rates.total_fixed:,.0f} pkt/s "
          "(paper: 500,000)")
    print(f"  terrain heartbeats' share of that:          "
          f"{rates.heartbeat_fraction_fixed:.0%}  (paper: 4/5)")
    print("  NACKs per site-wide loss on the WAN:        "
          "20 centralized -> 1 distributed (run `pytest benchmarks/` for the rest)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.analysis.metrics_report import render_json, render_text
    from repro.simnet.deploy import DeploymentSpec, LbrmDeployment
    from repro.simnet.loss import BernoulliLoss

    if args.sites < 1 or args.receivers < 1:
        print("metrics: --sites and --receivers must be >= 1", file=sys.stderr)
        return 2

    with obs.recording() as reg:
        # A small version of the paper's §2.2.2 world: a few sites, one
        # tail circuit suffering a burst outage mid-stream plus one
        # seeded flaky receiver, NACK-driven recovery from site loggers.
        dep = LbrmDeployment(
            DeploymentSpec(n_sites=args.sites, receivers_per_site=args.receivers, seed=args.seed)
        )
        dep.start()
        if args.sites >= 2 and args.receivers >= 1:
            dep.network.host("site2-rx0").inbound_loss = BernoulliLoss(
                0.2, dep.streams.stream("flaky-rx")
            )
        dep.advance(0.5)
        for i in range(5):
            dep.send(f"packet-{i}".encode())
            dep.advance(0.2)
        dep.burst_site("site1", duration=0.5)
        for i in range(5, 10):
            dep.send(f"packet-{i}".encode())
            dep.advance(0.2)
        dep.advance(10.0)
        if args.json:
            print(render_json(reg, trace_tail=args.trace))
        else:
            print(f"scenario: {dep.spec.n_sites} sites x "
                  f"{dep.spec.receivers_per_site} receivers, 10 packets, "
                  f"one 0.5s tail-circuit outage (seed={dep.spec.seed})")
            print()
            print(render_text(reg, trace_tail=args.trace))
    return 0


_DEMOS = {
    "quickstart": "quickstart",
    "dis": "dis_terrain",
    "ticker": "stock_ticker",
    "failover": "failover_demo",
    "live": "asyncio_live",
    "web": "web_invalidation",
}


def _cmd_demo(name: str):
    def run(args: argparse.Namespace) -> int:
        import importlib.util
        import pathlib

        # Examples live outside the package (they are user-facing scripts);
        # load by path so the CLI works from a source checkout.
        root = pathlib.Path(__file__).resolve().parents[2]
        script = root / "examples" / f"{_DEMOS[name]}.py"
        if not script.exists():
            print(f"example script not found: {script}", file=sys.stderr)
            return 1
        spec = importlib.util.spec_from_file_location(f"examples.{name}", script)
        module = importlib.util.module_from_spec(spec)
        assert spec.loader is not None
        spec.loader.exec_module(module)
        if name == "live":
            import asyncio

            asyncio.run(module.main())
        else:
            module.main()
        return 0

    return run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LBRM — Log-Based Receiver-Reliable Multicast (SIGCOMM '95 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package overview and parameter defaults").set_defaults(
        fn=_cmd_info
    )
    sub.add_parser("headline", help="recompute the paper's headline numbers").set_defaults(
        fn=_cmd_headline
    )
    metrics = sub.add_parser(
        "metrics", help="run a canned loss scenario and dump the metrics registry"
    )
    metrics.add_argument("--json", action="store_true", help="emit JSON instead of text")
    metrics.add_argument("--sites", type=int, default=5, help="receiver sites (default 5)")
    metrics.add_argument(
        "--receivers", type=int, default=4, help="receivers per site (default 4)"
    )
    metrics.add_argument("--seed", type=int, default=0, help="simulation seed (default 0)")
    metrics.add_argument(
        "--trace", type=int, default=20, metavar="N",
        help="include the last N trace events (default 20, 0 to omit)",
    )
    metrics.set_defaults(fn=_cmd_metrics)
    from repro.benchrunner import build_bench_parser, run_bench

    bench = sub.add_parser(
        "bench", help="run the perf harness and write BENCH_*.json results"
    )
    build_bench_parser(bench)
    bench.set_defaults(fn=run_bench)
    from repro.chaos.campaign import build_chaos_parser, run_chaos

    chaos = sub.add_parser(
        "chaos", help="run the randomized fault-injection conformance campaign"
    )
    build_chaos_parser(chaos)
    chaos.set_defaults(fn=run_chaos)
    from repro.chaos.hierarchy import build_hierarchy_chaos_parser, run_hierarchy_chaos

    hierarchy_chaos = sub.add_parser(
        "hierarchy-chaos",
        help="chaos campaign on k-level repair trees (hub crashes, reparent mutations)",
    )
    build_hierarchy_chaos_parser(hierarchy_chaos)
    hierarchy_chaos.set_defaults(fn=run_hierarchy_chaos)
    from repro.chaos.sweep import build_sweep_parser, run_sweep

    sweep = sub.add_parser(
        "failover-sweep",
        help="exhaustive crash-point failover sweep (zero-loss proof, JSON artifact)",
    )
    build_sweep_parser(sweep)
    sweep.set_defaults(fn=run_sweep)
    from repro.aio.smoke import build_smoke_parser, run_smoke

    smoke = sub.add_parser(
        "aio-smoke",
        help="live-UDP conformance check (LiveOracle I1-I4) with a JSON artifact",
    )
    build_smoke_parser(smoke)
    smoke.set_defaults(fn=run_smoke)
    for name, script in _DEMOS.items():
        sub.add_parser(name, help=f"run examples/{script}.py").set_defaults(fn=_cmd_demo(name))
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
