"""Structured event tracing — a bounded ring buffer of protocol events.

Counters tell you *how much*; the trace tells you *in what order*.  Every
instrumented subsystem emits :class:`TraceEvent` records keyed by its
clock — simulated time under :mod:`repro.simnet`, the event-loop clock
under :mod:`repro.aio` — so a trace from a seeded simulation run is a
deterministic, bit-comparable artifact (the determinism regression test
relies on exactly this).

The buffer is a ring: when full, the oldest events fall off and
``dropped`` counts them, bounding memory on arbitrarily long runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["TraceEvent", "EventTrace", "NullTrace", "NULL_TRACE"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence: when, what, and structured detail."""

    time: float
    name: str
    fields: tuple[tuple[str, object], ...] = ()

    def as_dict(self) -> dict:
        return {"time": self.time, "name": self.name, **dict(self.fields)}

    def format(self) -> str:
        detail = " ".join(f"{k}={v!r}" for k, v in self.fields)
        return f"[{self.time:12.6f}] {self.name}" + (f" {detail}" if detail else "")


class EventTrace:
    """Fixed-capacity ring buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events evicted by the ring (emitted beyond capacity)."""
        return self.emitted - len(self._events)

    def emit(self, time: float, name: str, **fields: object) -> None:
        """Record an event.  Field values should be hashable scalars or
        tuples so traces compare and serialize deterministically."""
        self.emitted += 1
        self._events.append(
            TraceEvent(time=time, name=name, fields=tuple(sorted(fields.items())))
        )

    def events(self, name: str | None = None) -> tuple[TraceEvent, ...]:
        """The buffered events, oldest first, optionally filtered."""
        if name is None:
            return tuple(self._events)
        return tuple(e for e in self._events if e.name == name)

    def format(self) -> str:
        return "\n".join(e.format() for e in self._events)

    def reset(self) -> None:
        self._events.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(tuple(self._events))


class NullTrace:
    """Do-nothing trace used by the no-op registry."""

    __slots__ = ()
    capacity = 0
    dropped = 0
    emitted = 0

    def emit(self, time: float, name: str, **fields: object) -> None:
        pass

    def events(self, name: str | None = None) -> tuple:
        return ()

    def format(self) -> str:
        return ""

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())


NULL_TRACE = NullTrace()
