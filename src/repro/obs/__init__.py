"""repro.obs — protocol-wide metrics and event-trace observability.

The paper's evaluation is quantitative (heartbeat overhead ratios,
per-site NACK collapse, statistical-ACK retransmission counts); this
package gives every subsystem one shared way to produce those numbers so
benchmarks read measurements instead of hand-rolling counters.

Usage model
-----------

Observability is **off by default and costs nothing**: the process-wide
registry starts as a :class:`~repro.obs.metrics.NullRegistry` whose
instruments are shared no-op singletons.  A harness that wants
measurements installs a real registry *before* building its protocol
machines (machines resolve their instruments at construction time)::

    from repro import obs

    with obs.recording() as reg:
        dep = LbrmDeployment(spec)
        dep.start(); ...
        print(reg.counter_value("receiver.nacks_sent"))
        print(reg.to_json())

Instrumentation never influences protocol behavior: instruments are
write-only from the machines' perspective, so a run with observability
on is packet-for-packet identical to one with it off (the determinism
regression test asserts this).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    StatCounters,
    format_key,
)
from repro.obs.trace import NULL_TRACE, EventTrace, NullTrace, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "StatCounters",
    "EventTrace",
    "NullTrace",
    "NULL_TRACE",
    "TraceEvent",
    "format_key",
    "registry",
    "install",
    "uninstall",
    "recording",
    "stat_counters",
]

_NULL_REGISTRY = NullRegistry()
_current: MetricsRegistry | NullRegistry = _NULL_REGISTRY


def registry() -> MetricsRegistry | NullRegistry:
    """The currently installed process-wide registry (no-op by default)."""
    return _current


def install(reg: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``reg`` (or a fresh registry) as the process-wide one."""
    global _current
    _current = reg if reg is not None else MetricsRegistry()
    return _current


def uninstall() -> None:
    """Return the process to the zero-cost no-op registry."""
    global _current
    _current = _NULL_REGISTRY


@contextmanager
def recording(reg: MetricsRegistry | None = None):
    """Context manager: install a registry, restore the previous on exit.

    Nests correctly, so a benchmark can run isolated measurement windows
    back to back without leaking counts between them.
    """
    global _current
    previous = _current
    installed = reg if reg is not None else MetricsRegistry()
    _current = installed
    try:
        yield installed
    finally:
        _current = previous


def stat_counters(prefix: str, initial: dict | None = None, **labels: object) -> dict:
    """Build a machine ``stats`` dict, registry-mirrored when recording.

    With observability off this returns a plain dict — the machine's hot
    path then runs exactly the pre-instrumentation code.  While a real
    registry is installed, it returns a :class:`StatCounters` whose item
    assignments also bump ``<prefix>.<key>`` counters (labelled, e.g.
    ``node=primary``) in the registry.
    """
    reg = _current
    if not reg.enabled:
        return dict(initial or {})
    return StatCounters(reg, prefix, initial, **labels)
