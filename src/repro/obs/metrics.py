"""Metric primitives and the process-wide registry.

Three instrument kinds cover everything the paper's evaluation measures:

* :class:`Counter` — monotone totals (packets sent by type, NACKs,
  retransmissions, log evictions).
* :class:`Gauge` — point-in-time levels (source buffer occupancy,
  log-store size, t_wait, the group-size estimate, queue depth).
* :class:`Histogram` — sampled distributions with p50/p95/p99
  (recovery latency, heartbeat interval evolution).

Instruments are identified by ``(name, labels)`` and owned by a
:class:`MetricsRegistry`.  The registry is deliberately boring: plain
Python attributes, no locks (protocol machines are single-threaded per
harness), and a deterministic :meth:`MetricsRegistry.snapshot` so two
runs with the same seed serialize bit-identically.

The :class:`NullRegistry` is the zero-cost counterpart: every accessor
returns a shared singleton whose mutators are no-ops, so instrumented
code costs one attribute call per event when observability is off and
never allocates.
"""

from __future__ import annotations

import json
import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "StatCounters",
    "format_key",
]

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(name: str, labels: Labels) -> str:
    """Render ``(name, labels)`` as the canonical snapshot key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({format_key(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that can go up and down (a level, not a total)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({format_key(self.name, self.labels)}={self.value})"


class Histogram:
    """A sampled distribution with on-demand percentiles.

    Samples are kept raw (protocol runs observe thousands of latencies,
    not millions) and sorted lazily; ``observe`` is an amortized O(1)
    append on the hot path.
    """

    __slots__ = ("name", "labels", "_samples", "_sorted")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        samples = self._samples
        if samples and value < samples[-1]:
            self._sorted = False
        samples.append(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return math.fsum(self._samples)

    @property
    def min(self) -> float | None:
        return min(self._samples) if self._samples else None

    @property
    def max(self) -> float | None:
        return max(self._samples) if self._samples else None

    @property
    def mean(self) -> float | None:
        return self.total / len(self._samples) if self._samples else None

    def percentile(self, p: float) -> float | None:
        """The ``p``-th percentile (0..100), linearly interpolated.

        Returns ``None`` for an empty histogram; a single sample is every
        percentile of itself.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        samples = self._samples
        if not samples:
            return None
        if not self._sorted:
            samples.sort()
            self._sorted = True
        if len(samples) == 1:
            return samples[0]
        rank = (p / 100.0) * (len(samples) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return samples[lo]
        frac = rank - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    @property
    def p50(self) -> float | None:
        return self.percentile(50.0)

    @property
    def p95(self) -> float | None:
        return self.percentile(95.0)

    @property
    def p99(self) -> float | None:
        return self.percentile(99.0)

    def summary(self) -> dict:
        """Deterministic dict summary for snapshots and reports."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = True

    def __repr__(self) -> str:
        return f"Histogram({format_key(self.name, self.labels)}, n={self.count})"


class MetricsRegistry:
    """Process-wide home of every instrument plus the event trace.

    ``enabled`` is True; instrumented call sites use it (via
    :func:`repro.obs.stat_counters`) to skip mirror bookkeeping entirely
    when the no-op registry is installed instead.
    """

    enabled = True

    def __init__(self, trace_capacity: int = 65536) -> None:
        from repro.obs.trace import EventTrace

        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Gauge] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}
        self.trace = EventTrace(capacity=trace_capacity)

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, key[1])
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(name, key[1])
        return gauge

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(name, key[1])
        return hist

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> int:
        """Current value of a counter; 0 when it was never touched."""
        counter = self._counters.get((name, _label_key(labels)))
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str, **labels: object) -> float:
        gauge = self._gauges.get((name, _label_key(labels)))
        return gauge.value if gauge is not None else 0.0

    def counter_total(self, name: str) -> int:
        """Sum of a counter across every label combination."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def snapshot(self) -> dict:
        """Deterministic, JSON-ready dump of every instrument.

        Keys are sorted canonical names (``name{k=v,...}``), so two runs
        recording the same history serialize bit-identically.
        """
        counters = {
            format_key(*key): c.value for key, c in sorted(self._counters.items())
        }
        gauges = {format_key(*key): g.value for key, g in sorted(self._gauges.items())}
        histograms = {
            format_key(*key): h.summary() for key, h in sorted(self._histograms.items())
        }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument and clear the trace, keeping identities.

        Handles the warm-up pattern: machines hold direct references to
        their instruments, so the registry must reset in place rather
        than drop them.
        """
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for hist in self._histograms.values():
            hist.reset()
        self.trace.reset()


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument kind."""

    __slots__ = ()
    name = ""
    labels: Labels = ()
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None
    p50 = None
    p95 = None
    p99 = None

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> None:
        return None

    def summary(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The zero-cost observability off-switch (the process default)."""

    enabled = False

    def __init__(self) -> None:
        from repro.obs.trace import NULL_TRACE

        self.trace = NULL_TRACE

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_value(self, name: str, **labels: object) -> int:
        return 0

    def gauge_value(self, name: str, **labels: object) -> float:
        return 0.0

    def counter_total(self, name: str) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        pass


class StatCounters(dict):
    """A machine-local ``stats`` dict that mirrors into the registry.

    Protocol machines keep per-instance ``stats`` dicts that tests and
    benchmarks read directly; this subclass preserves that contract
    (equality, ``.get``, item access, iteration) while forwarding every
    increment to a registry counter named ``<prefix>.<key>``.  Machines
    built while observability is off get a plain dict instead (see
    :func:`repro.obs.stat_counters`), so the mirror costs nothing in
    no-op mode.
    """

    __slots__ = ("_registry", "_prefix", "_labels", "_instruments")

    def __init__(
        self,
        registry: MetricsRegistry,
        prefix: str,
        initial: dict | None = None,
        **labels: object,
    ) -> None:
        super().__init__()
        self._registry = registry
        self._prefix = prefix
        self._labels = labels
        self._instruments: dict[str, Counter] = {}
        for key, value in (initial or {}).items():
            # Materialize the counter even at zero so reports list it.
            self._instrument(key)
            self[key] = value

    def _instrument(self, key: str) -> Counter:
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._registry.counter(f"{self._prefix}.{key}", **self._labels)
            self._instruments[key] = instrument
        return instrument

    def __setitem__(self, key: str, value: int) -> None:
        delta = value - dict.get(self, key, 0)
        dict.__setitem__(self, key, value)
        if delta:
            # _instrument() inlined for the hit case: stats increments
            # run several times per delivered packet.
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instrument(key)
            instrument.value += delta
