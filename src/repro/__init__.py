"""LBRM — Log-Based Receiver-Reliable Multicast.

A full reproduction of Holbrook, Singhal & Cheriton, *Log-Based
Receiver-Reliable Multicast for Distributed Interactive Simulation*
(SIGCOMM 1995): the protocol (:mod:`repro.core`), a deterministic WAN
simulator (:mod:`repro.simnet`), a real asyncio UDP multicast transport
(:mod:`repro.aio`), the paper's comparison baselines
(:mod:`repro.baselines`), its application studies (:mod:`repro.apps`),
and the closed-form analysis behind its figures
(:mod:`repro.analysis`).

Quickstart::

    from repro.simnet import LbrmDeployment, DeploymentSpec

    dep = LbrmDeployment(DeploymentSpec(n_sites=5, receivers_per_site=4))
    dep.start()
    dep.send(b"bridge destroyed")
    dep.advance(1.0)
    assert dep.receivers_with(1) == len(dep.receivers)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
