"""WAN topology with sites, tail circuits, and multicast routing.

The model mirrors the paper's Figure 1: hosts live on site LANs, each
site hangs off the wide-area backbone through a *tail circuit* (the
expensive, congestion-prone T1), and the backbone itself is fast and
lightly loaded.  Paths:

* same site:   ``LAN``                                    (1 hop)
* cross site:  ``LAN → tail-up → backbone → tail-down → LAN``  (4 hops)

so a TTL of 1 scopes a multicast to the sender's site — matching the
paper's use of the TTL field to keep secondary-logger repairs local
(§2.2.1).

Multicast follows a shared distribution tree: each link carries one copy
per transmission regardless of how many group members sit behind it, and
a loss on a link is shared by everyone downstream — which is what makes
"congestion on the incoming tail circuit causes packet loss at an entire
site" (§2.2.2) come out naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.packets import Packet, encode
from repro.simnet.engine import Simulator, WakeupMux
from repro.simnet.links import Link
from repro.simnet.loss import LossModel
from repro.simnet.rng import RngStreams

__all__ = [
    "Host",
    "Site",
    "Network",
    "wire_size",
    "clear_wire_size_cache",
    "SAME_SITE_HOPS",
    "CROSS_SITE_HOPS",
]

SAME_SITE_HOPS = 1
CROSS_SITE_HOPS = 4

# Sentinel for "no arrival time computed yet" in the fan-out site cache
# (None is a real stored value there: it means the path dropped).
_NO_ARRIVAL = object()

_SIZE_CACHE: dict[int, int] = {}


def clear_wire_size_cache() -> None:
    """Drop memoized packet sizes (tests that demand cold-start runs)."""
    _SIZE_CACHE.clear()


def wire_size(packet: Packet) -> int:
    """Encoded size of ``packet`` in bytes (cached per type + payload len).

    Exact for fixed-size messages; for payload-bearing ones the size is
    header + payload, so the cache key includes the payload length.
    """
    payload = getattr(packet, "payload", b"")
    key = (int(packet.TYPE) << 32) | len(payload)
    size = _SIZE_CACHE.get(key)
    if size is None:
        size = len(encode(packet))
        _SIZE_CACHE[key] = size
    return size


class Endpoint(Protocol):
    """What the network delivers packets to (see :mod:`repro.simnet.node`)."""

    def receive(self, packet: Packet, src: str, now: float) -> None: ...


class PacketChaosHook(Protocol):
    """Duck type of :class:`repro.chaos.PacketChaos` as the network sees it."""

    def arrivals(self, packet: Packet, src: str, dst: str, at: float) -> list[float]: ...


@dataclass
class Host:
    """A simulated host: a name, a site, and an attached endpoint.

    ``represents`` is the modeled population multiplicity: an aggregate
    host (:mod:`repro.scale`) stands in for that many real receivers,
    while ordinary hosts represent exactly themselves.  The network's
    routing treats every host identically — multiplicity only affects
    population accounting (:meth:`Network.modeled_stats`).
    """

    name: str
    site: "Site"
    inbound_loss: LossModel | None = None
    endpoint: Endpoint | None = None
    represents: int = 1

    rx_packets: int = 0
    rx_dropped: int = 0

    def attach(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint


@dataclass
class Site:
    """A topologically localized part of the network (LAN + tail circuit)."""

    name: str
    lan: Link
    tail_up: Link
    tail_down: Link
    hosts: list[Host] = field(default_factory=list)


class Network:
    """The simulated internetwork: sites, hosts, groups, and routing."""

    def __init__(
        self,
        sim: Simulator,
        streams: RngStreams | None = None,
        backbone_latency: float = 0.005,
    ) -> None:
        self.sim = sim
        self.streams = streams or RngStreams(seed=0)
        self.backbone = Link(
            "backbone", latency=backbone_latency, rng=self.streams.stream("link:backbone")
        )
        self._sites: dict[str, Site] = {}
        self._hosts: dict[str, Host] = {}
        self._groups: dict[str, set[str]] = {}
        # Sorted membership, cached per group (invalidated on join/leave):
        # multicast iterates it on every transmission.
        self._member_cache: dict[str, list[str]] = {}
        # (group, src, ttl) -> (member-list identity, [(Host, site name)])
        # for the batched fan-out: the per-member host lookup, site
        # resolution, and TTL filter are membership-derived, so one walk
        # serves every transmission until membership changes (validity is
        # keyed on the cached member list object, which join/leave
        # replace) or a host appears (add_host clears it).
        self._fanout_cache: dict[tuple[str, str, int | None], tuple[list[str], list]] = {}
        # Fast path: one delivery event per distinct arrival time instead
        # of one per receiver, and one wakeup event per distinct node
        # deadline (the WakeupMux).  Off = the pre-batching per-receiver
        # loop and per-node wakeups (kept as the reference baseline for
        # the benchmark harness); both produce identical delivery and
        # RNG-draw orderings.
        self.wakeup_mux: WakeupMux | None = None
        self.batch_delivery = True
        # Optional observer called for every delivered/dropped packet:
        # fn(kind, packet, src, dst, now) with kind in {"rx", "drop"}.
        # (A property: assigning it also clears `batch_observer`.)
        self._observer: Callable[[str, Packet, str, str, float], None] | None = None
        # Optional amortized counterpart, fn(packet, src, hosts, now),
        # called once per co-timed delivery batch *instead of* per-host
        # observer calls.  Only the observer's owner may install it (see
        # the observer setter): anything that replaces or wraps
        # `observer` — the chaos oracle chains it — silently falls back
        # to the exact per-packet path.
        self.batch_observer: Callable[[Packet, str, list[Host], float], None] | None = None
        # Optional packet mangler (repro.chaos.PacketChaos): given one
        # about-to-be-scheduled delivery, returns the arrival times to
        # schedule instead — [] drops (corruption), [at, at+d] duplicates,
        # [at+d] reorders.  None = no mangling, zero cost.
        self.chaos: "PacketChaosHook | None" = None
        self.stats = {"unicast_sent": 0, "multicast_sent": 0, "delivered": 0, "dropped": 0}

    @property
    def batch_delivery(self) -> bool:
        return self._batch_delivery

    @batch_delivery.setter
    def batch_delivery(self, on: bool) -> None:
        self._batch_delivery = on
        # The wakeup mux is part of the same fast path; the reference
        # configuration keeps one simulator event per node wakeup.
        # Buckets already scheduled by an old mux self-heal: their fire
        # loop skips nodes whose armed deadline no longer matches, and a
        # spurious poll is legal under the machine contract.
        self.wakeup_mux = WakeupMux(self.sim) if on else None

    @property
    def observer(self) -> "Callable[[str, Packet, str, str, float], None] | None":
        return self._observer

    @observer.setter
    def observer(self, fn: "Callable[[str, Packet, str, str, float], None] | None") -> None:
        # Replacing the per-packet observer invalidates any batched
        # observer fast path — it belonged to the previous observer, and
        # leaving it installed would let deliveries bypass the new one.
        self._observer = fn
        self.batch_observer = None

    # -- construction ----------------------------------------------------

    def add_site(
        self,
        name: str,
        lan_latency: float = 0.0005,
        tail_latency: float = 0.02,
        tail_bandwidth: float = 0.0,
        tail_queue: int = 0,
        tail_loss_up: LossModel | None = None,
        tail_loss_down: LossModel | None = None,
        lan_loss: LossModel | None = None,
    ) -> Site:
        """Create a site hanging off the backbone via its tail circuit."""
        if name in self._sites:
            raise ValueError(f"site {name!r} already exists")
        site = Site(
            name=name,
            lan=Link(
                f"{name}.lan",
                latency=lan_latency,
                loss=lan_loss,
                rng=self.streams.stream(f"link:{name}.lan"),
            ),
            tail_up=Link(
                f"{name}.tail.up",
                latency=tail_latency,
                bandwidth=tail_bandwidth,
                queue_limit=tail_queue,
                loss=tail_loss_up,
                rng=self.streams.stream(f"link:{name}.tail.up"),
            ),
            tail_down=Link(
                f"{name}.tail.down",
                latency=tail_latency,
                bandwidth=tail_bandwidth,
                queue_limit=tail_queue,
                loss=tail_loss_down,
                rng=self.streams.stream(f"link:{name}.tail.down"),
            ),
        )
        self._sites[name] = site
        return site

    def add_host(
        self,
        name: str,
        site: Site,
        inbound_loss: LossModel | None = None,
        represents: int = 1,
    ) -> Host:
        """Create a host on ``site``'s LAN.

        ``represents`` > 1 marks an aggregate host standing in for that
        many modeled receivers (see :class:`Host`).
        """
        if name in self._hosts:
            raise ValueError(f"host {name!r} already exists")
        if represents < 1:
            raise ValueError(f"represents must be >= 1, got {represents}")
        host = Host(name=name, site=site, inbound_loss=inbound_loss, represents=represents)
        site.hosts.append(host)
        self._hosts[name] = host
        # A host may be created under a name that already joined a group
        # (join() does not validate existence) — cached fan-outs built
        # while it was missing must be rebuilt.
        self._fanout_cache.clear()
        return host

    # -- lookup ----------------------------------------------------------

    def host(self, name: str) -> Host:
        return self._hosts[name]

    def site(self, name: str) -> Site:
        return self._sites[name]

    @property
    def sites(self) -> list[Site]:
        return list(self._sites.values())

    @property
    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def modeled_stats(self) -> dict:
        """Population accounting with host multiplicity applied.

        ``hosts`` counts simulated nodes; ``modeled_population`` counts
        the receivers they stand for (aggregate hosts contribute their
        ``represents``).  ``per_site`` maps site name to its modeled
        population — the denominator scale experiments report
        receivers-per-second against.
        """
        per_site: dict[str, int] = {}
        total = 0
        for host in self._hosts.values():
            per_site[host.site.name] = per_site.get(host.site.name, 0) + host.represents
            total += host.represents
        return {
            "hosts": len(self._hosts),
            "modeled_population": total,
            "per_site": per_site,
        }

    # -- group membership ----------------------------------------------------

    def join(self, group: str, host_name: str) -> None:
        self._groups.setdefault(group, set()).add(host_name)
        self._member_cache.pop(group, None)

    def leave(self, group: str, host_name: str) -> None:
        members = self._groups.get(group)
        if members is not None:
            members.discard(host_name)
            self._member_cache.pop(group, None)

    def _sorted_members(self, group: str) -> list[str]:
        """Sorted member list, cached between membership changes.

        Sorted iteration keeps RNG consumption order (and therefore the
        whole simulation) independent of set-hash randomization.
        """
        members = self._member_cache.get(group)
        if members is None:
            members = sorted(self._groups.get(group, ()))
            self._member_cache[group] = members
        return members

    def members(self, group: str) -> frozenset[str]:
        return frozenset(self._groups.get(group, frozenset()))

    # -- routing ----------------------------------------------------------

    def path(self, src: Host, dst: Host) -> tuple[list[Link], int]:
        """The ordered link list and hop count from ``src`` to ``dst``."""
        if src.site is dst.site:
            return [src.site.lan], SAME_SITE_HOPS
        return (
            [src.site.lan, src.site.tail_up, self.backbone, dst.site.tail_down, dst.site.lan],
            CROSS_SITE_HOPS,
        )

    def send_unicast(self, src_name: str, dst_name: str, packet: Packet) -> None:
        """Inject a point-to-point packet at the current sim time."""
        src = self._hosts[src_name]
        dst = self._hosts.get(dst_name)
        self.stats["unicast_sent"] += 1
        if dst is None:
            self.stats["dropped"] += 1  # destination does not exist (failed host)
            return
        now = self.sim.now
        links, _ = self.path(src, dst)
        at = now
        size = wire_size(packet)
        for link in links:
            exit_time = link.transit(size, at)
            if exit_time is None:
                self._drop(packet, src_name, dst_name, now)
                return
            at = exit_time
        self._deliver(dst, packet, src_name, at)

    def send_multicast(self, src_name: str, group: str, packet: Packet, ttl: int | None = None) -> None:
        """Inject a multicast: one copy per tree link, shared fate.

        The fast path (``batch_delivery``) computes each destination
        site's arrival time once and schedules **one delivery event per
        distinct arrival time**, fanning out to the co-timed receivers
        inside the callback — for the paper's 50×20 deployment that is
        ~50 events per transmission instead of ~1000.  Drop accounting,
        per-member inbound-loss draws, and the delivery order are
        bit-identical to the per-receiver reference loop below.
        """
        src = self._hosts[src_name]
        self.stats["multicast_sent"] += 1
        now = self.sim.now
        size = wire_size(packet)
        # Per-transmission cache of each link's outcome so the loss model
        # and the bandwidth are charged exactly once per tree edge.
        outcomes: dict[int, float | None] = {}

        def cross(link: Link, at: float) -> float | None:
            key = id(link)
            if key not in outcomes:
                outcomes[key] = link.transit(size, at)
            return outcomes[key]

        members = self._sorted_members(group)
        if not self.batch_delivery:
            self._send_multicast_reference(src, src_name, members, packet, ttl, now, cross)
            return

        # Membership-derived fan-out targets, cached across transmissions.
        fanout_key = (group, src_name, ttl)
        cached = self._fanout_cache.get(fanout_key)
        if cached is None or cached[0] is not members:
            src_site = src.site
            hosts = self._hosts
            pairs: list[tuple[Host, str]] = []
            for member_name in members:
                if member_name == src_name:
                    continue
                dst = hosts.get(member_name)
                if dst is None:
                    continue
                hops = SAME_SITE_HOPS if dst.site is src_site else CROSS_SITE_HOPS
                if ttl is not None and hops > ttl:
                    continue  # scoped out, not an error
                pairs.append((dst, dst.site.name))
            if len(self._fanout_cache) >= 256:
                self._fanout_cache.clear()
            self._fanout_cache[fanout_key] = (members, pairs)
        else:
            pairs = cached[1]

        # Site name -> arrival time (None = shared drop on the path); all
        # receivers behind the same tree edges share one outcome.
        site_at: dict[str, float | None] = {}
        batches: dict[float, list[Host]] = {}
        chaos = self.chaos

        # Consecutive members sharing one inbound-loss instance and one
        # arrival time (a site behind a site-level loss model) get their
        # fates from a single drops_batch() call.  Per-instance stream
        # order — all determinism requires — is preserved, and flushing
        # whenever a member breaks the run keeps drop/delivery processing
        # in exact member order.
        run_hosts: list[Host] = []
        run_loss: "LossModel | None" = None
        run_at = 0.0

        def flush_run() -> None:
            verdicts = run_loss.drops_batch(run_at, len(run_hosts))  # type: ignore[union-attr]
            for dst, dead in zip(run_hosts, verdicts):
                if dead:
                    self._drop(packet, src_name, dst.name, run_at)
                elif chaos is not None:
                    self._deliver_chaos(dst, packet, src_name, run_at)
                else:
                    bucket = batches.get(run_at)
                    if bucket is None:
                        batches[run_at] = [dst]
                    else:
                        bucket.append(dst)
            run_hosts.clear()

        site_at_get = site_at.get
        for dst, site_name in pairs:
            at = site_at_get(site_name, _NO_ARRIVAL)
            if at is _NO_ARRIVAL:
                at = now
                for link in self.path(src, dst)[0]:
                    at = cross(link, at)  # type: ignore[arg-type]
                    if at is None:
                        break
                site_at[site_name] = at
            if at is None:
                if run_hosts:
                    flush_run()
                self._drop(packet, src_name, dst.name, now)
                continue
            loss = dst.inbound_loss
            if loss is not None:
                if run_hosts and (loss is not run_loss or at != run_at):
                    flush_run()
                run_loss, run_at = loss, at
                run_hosts.append(dst)
                continue
            if run_hosts:
                flush_run()
            if chaos is not None:
                self._deliver_chaos(dst, packet, src_name, at)
                continue
            bucket = batches.get(at)
            if bucket is None:
                batches[at] = [dst]
            else:
                bucket.append(dst)
        if run_hosts:
            flush_run()
        schedule = self.sim.schedule
        for at, co_timed in batches.items():
            schedule(at, self._arrive_batch, co_timed, packet, src_name)

    def _send_multicast_reference(
        self,
        src: Host,
        src_name: str,
        members: list[str],
        packet: Packet,
        ttl: int | None,
        now: float,
        cross,
    ) -> None:
        """Pre-batching reference loop: one delivery event per receiver."""
        for member_name in members:
            if member_name == src_name:
                continue
            dst = self._hosts.get(member_name)
            if dst is None:
                continue
            links, hops = self.path(src, dst)
            if ttl is not None and hops > ttl:
                continue  # scoped out, not an error
            at: float | None = now
            for link in links:
                at = cross(link, at)
                if at is None:
                    break
            if at is None:
                self._drop(packet, src_name, member_name, now)
            else:
                self._deliver(dst, packet, src_name, at)

    # -- delivery ----------------------------------------------------------

    def _deliver(self, dst: Host, packet: Packet, src_name: str, at: float) -> None:
        if dst.inbound_loss is not None and dst.inbound_loss.drops(at):
            self._drop(packet, src_name, dst.name, at)
            return
        if self.chaos is not None:
            self._deliver_chaos(dst, packet, src_name, at)
            return
        self.sim.schedule(at, self._arrive, dst, packet, src_name)

    def _deliver_chaos(self, dst: Host, packet: Packet, src_name: str, at: float) -> None:
        """Schedule a delivery through the chaos mangler (slow path)."""
        assert self.chaos is not None
        times = self.chaos.arrivals(packet, src_name, dst.name, at)
        if not times:
            self._drop(packet, src_name, dst.name, at)
            return
        for t in times:
            self.sim.schedule(t, self._arrive, dst, packet, src_name)

    def _arrive(self, dst: Host, packet: Packet, src_name: str) -> None:
        dst.rx_packets += 1
        self.stats["delivered"] += 1
        if self._observer is not None:
            self._observer("rx", packet, src_name, dst.name, self.sim.now)
        if dst.endpoint is not None:
            dst.endpoint.receive(packet, src_name, self.sim.now)

    def _arrive_batch(self, co_timed: list[Host], packet: Packet, src_name: str) -> None:
        """Deliver one multicast transmission to its co-timed receivers.

        Iteration order is membership order, matching the tie-breaker
        order the per-receiver reference path produces for simultaneous
        deliveries.  The delivered count and (when its owner installed
        one) the observer are charged once per batch, not per host.
        """
        now = self.sim.now
        self.stats["delivered"] += len(co_timed)
        batch_obs = self.batch_observer
        if batch_obs is not None:
            batch_obs(packet, src_name, co_timed, now)
            for dst in co_timed:
                dst.rx_packets += 1
                endpoint = dst.endpoint
                if endpoint is not None:
                    endpoint.receive(packet, src_name, now)
        else:
            observer = self._observer
            for dst in co_timed:
                dst.rx_packets += 1
                if observer is not None:
                    observer("rx", packet, src_name, dst.name, now)
                endpoint = dst.endpoint
                if endpoint is not None:
                    endpoint.receive(packet, src_name, now)

    def _drop(self, packet: Packet, src_name: str, dst_name: str, now: float) -> None:
        self.stats["dropped"] += 1
        host = self._hosts.get(dst_name)
        if host is not None:
            host.rx_dropped += 1
        if self._observer is not None:
            self._observer("drop", packet, src_name, dst_name, now)
