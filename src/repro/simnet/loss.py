"""Packet-loss models for simulated links and hosts.

The paper's analysis (§2.1.1) uses a simple *burst* model — "the network
experiences a burst congestion period of duration t_burst during which a
given host receives no packets" — provided here as
:class:`BurstLoss` with deterministic windows.  For steadier background
loss, :class:`BernoulliLoss` drops i.i.d. and :class:`GilbertElliottLoss`
produces the correlated bursts real congestion exhibits.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.simnet.rng import default_rng

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "BurstLoss",
    "GilbertElliottLoss",
    "CompositeLoss",
]


class LossModel(Protocol):
    """Decides the fate of one packet crossing a link at time ``now``."""

    def drops(self, now: float) -> bool:
        """True when the packet is lost."""
        ...

    def drops_batch(self, now: float, count: int) -> list[bool]:
        """Fates of ``count`` packets all crossing at time ``now``.

        Must be stream-equivalent to ``count`` sequential :meth:`drops`
        calls: same RNG consumption, same verdicts, same state
        afterwards — the batched fast path may never change a same-seed
        report by a byte.
        """
        ...


class NoLoss:
    """A perfect link."""

    def drops(self, now: float) -> bool:
        return False

    def drops_batch(self, now: float, count: int) -> list[bool]:
        return [False] * count


def _instance_rng(family: str, counter: list[int]) -> random.Random:
    """A decorrelated default stream for one loss-model instance.

    Every default-constructed instance used to share one named stream
    (``default_rng("loss.bernoulli")``), which made all such links drop
    the *same* packets in lockstep — perfectly correlated loss that no
    real network exhibits.  Numbering the streams keeps defaults
    deterministic (for a fixed construction order) while decorrelating
    instances; pass an explicit ``rng`` for full seed control.
    """
    counter[0] += 1
    return default_rng(f"{family}.{counter[0]}")


class BernoulliLoss:
    """Independent loss with fixed probability ``p``."""

    _instances = [0]

    def __init__(self, p: float, rng: random.Random | None = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self._p = p
        self._rng = rng or _instance_rng("loss.bernoulli", self._instances)

    @property
    def p(self) -> float:
        return self._p

    def drops(self, now: float) -> bool:
        return self._rng.random() < self._p

    def drops_batch(self, now: float, count: int) -> list[bool]:
        # One bound-method lookup serves the whole fan-out; the list comp
        # draws in exactly the order sequential drops() calls would.
        rand, p = self._rng.random, self._p
        return [rand() < p for _ in range(count)]


class BurstLoss:
    """Total loss inside configured time windows, perfect outside.

    This is the §2.1.1 burst congestion model: windows are
    ``(start, end)`` pairs in simulation time.  An optional ``base``
    model applies outside the windows.
    """

    def __init__(self, windows: list[tuple[float, float]], base: LossModel | None = None) -> None:
        for start, end in windows:
            if end < start:
                raise ValueError(f"burst window ends before it starts: ({start}, {end})")
        self._windows = sorted(windows)
        self._base = base or NoLoss()

    @property
    def windows(self) -> list[tuple[float, float]]:
        return list(self._windows)

    def drops(self, now: float) -> bool:
        for start, end in self._windows:
            if start <= now < end:
                return True
            if start > now:
                break
        return self._base.drops(now)

    def drops_batch(self, now: float, count: int) -> list[bool]:
        for start, end in self._windows:
            if start <= now < end:
                # Sequential drops() returns before touching the base
                # model inside a window, so the batch must not advance
                # the base stream either.
                return [True] * count
            if start > now:
                break
        return self._base.drops_batch(now, count)


class GilbertElliottLoss:
    """Two-state Markov loss: a *good* state with light loss and a *bad*
    (congested) state with heavy loss.

    State transitions are evaluated per packet, which for roughly
    regular traffic approximates the continuous-time chain and keeps the
    model deterministic under a seeded RNG.
    """

    _instances = [0]

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        loss_good: float = 0.0,
        loss_bad: float = 0.9,
        rng: random.Random | None = None,
    ) -> None:
        # (``rng`` is positional-last on purpose: every experiment that
        # cares about reproducibility should pass its own stream.)
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self._p_gb = p_good_to_bad
        self._p_bg = p_bad_to_good
        self._loss_good = loss_good
        self._loss_bad = loss_bad
        self._bad = False
        self._rng = rng or _instance_rng("loss.gilbert-elliott", self._instances)

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    def drops(self, now: float) -> bool:
        if self._bad:
            if self._rng.random() < self._p_bg:
                self._bad = False
        else:
            if self._rng.random() < self._p_gb:
                self._bad = True
        p = self._loss_bad if self._bad else self._loss_good
        return self._rng.random() < p

    def drops_batch(self, now: float, count: int) -> list[bool]:
        # The chain is inherently sequential (each verdict depends on the
        # state the previous packet left behind); batching still hoists
        # the attribute lookups out of the per-packet loop.
        rand = self._rng.random
        p_gb, p_bg = self._p_gb, self._p_bg
        loss_good, loss_bad = self._loss_good, self._loss_bad
        bad = self._bad
        out = []
        append = out.append
        for _ in range(count):
            if bad:
                if rand() < p_bg:
                    bad = False
            else:
                if rand() < p_gb:
                    bad = True
            append(rand() < (loss_bad if bad else loss_good))
        self._bad = bad
        return out


class CompositeLoss:
    """Drops when *any* member model drops (e.g. burst over Bernoulli).

    ``rng``, when given, reseeds the composite deterministically: every
    member that accepts a seeded stream is rebuilt on a sub-stream split
    from it, so one seed pins the whole stack regardless of how the
    members were constructed.
    """

    def __init__(self, *models: LossModel, rng: random.Random | None = None) -> None:
        if rng is not None:
            models = tuple(self._reseed(model, rng, index)
                           for index, model in enumerate(models))
        self._models = models

    @staticmethod
    def _reseed(model: LossModel, rng: random.Random, index: int) -> LossModel:
        sub = random.Random(f"composite.{index}.{rng.random()}")
        if isinstance(model, BernoulliLoss):
            return BernoulliLoss(model.p, rng=sub)
        if isinstance(model, GilbertElliottLoss):
            return GilbertElliottLoss(
                p_good_to_bad=model._p_gb,
                p_bad_to_good=model._p_bg,
                loss_good=model._loss_good,
                loss_bad=model._loss_bad,
                rng=sub,
            )
        return model  # deterministic models (NoLoss, BurstLoss) pass through

    def drops(self, now: float) -> bool:
        # Evaluate all models so stateful members keep advancing.
        return any([model.drops(now) for model in self._models])

    def drops_batch(self, now: float, count: int) -> list[bool]:
        # Per-member batches OR'd column-wise.  Stream-equivalent to the
        # sequential interleaving because members draw from independent
        # RNG instances (guaranteed by construction: defaults are
        # numbered streams, ``rng=`` rebuilds members on split
        # sub-streams), so each member's own draw order is all that
        # determinism requires.
        verdicts = [model.drops_batch(now, count) for model in self._models]
        if not verdicts:
            return [False] * count
        if len(verdicts) == 1:
            return verdicts[0]
        return [any(col) for col in zip(*verdicts)]
