"""Packet-loss models for simulated links and hosts.

The paper's analysis (§2.1.1) uses a simple *burst* model — "the network
experiences a burst congestion period of duration t_burst during which a
given host receives no packets" — provided here as
:class:`BurstLoss` with deterministic windows.  For steadier background
loss, :class:`BernoulliLoss` drops i.i.d. and :class:`GilbertElliottLoss`
produces the correlated bursts real congestion exhibits.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.simnet.rng import default_rng

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "BurstLoss",
    "GilbertElliottLoss",
    "CompositeLoss",
]


class LossModel(Protocol):
    """Decides the fate of one packet crossing a link at time ``now``."""

    def drops(self, now: float) -> bool:
        """True when the packet is lost."""
        ...


class NoLoss:
    """A perfect link."""

    def drops(self, now: float) -> bool:
        return False


class BernoulliLoss:
    """Independent loss with fixed probability ``p``."""

    def __init__(self, p: float, rng: random.Random | None = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self._p = p
        self._rng = rng or default_rng("loss.bernoulli")

    @property
    def p(self) -> float:
        return self._p

    def drops(self, now: float) -> bool:
        return self._rng.random() < self._p


class BurstLoss:
    """Total loss inside configured time windows, perfect outside.

    This is the §2.1.1 burst congestion model: windows are
    ``(start, end)`` pairs in simulation time.  An optional ``base``
    model applies outside the windows.
    """

    def __init__(self, windows: list[tuple[float, float]], base: LossModel | None = None) -> None:
        for start, end in windows:
            if end < start:
                raise ValueError(f"burst window ends before it starts: ({start}, {end})")
        self._windows = sorted(windows)
        self._base = base or NoLoss()

    @property
    def windows(self) -> list[tuple[float, float]]:
        return list(self._windows)

    def drops(self, now: float) -> bool:
        for start, end in self._windows:
            if start <= now < end:
                return True
            if start > now:
                break
        return self._base.drops(now)


class GilbertElliottLoss:
    """Two-state Markov loss: a *good* state with light loss and a *bad*
    (congested) state with heavy loss.

    State transitions are evaluated per packet, which for roughly
    regular traffic approximates the continuous-time chain and keeps the
    model deterministic under a seeded RNG.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        loss_good: float = 0.0,
        loss_bad: float = 0.9,
        rng: random.Random | None = None,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self._p_gb = p_good_to_bad
        self._p_bg = p_bad_to_good
        self._loss_good = loss_good
        self._loss_bad = loss_bad
        self._bad = False
        self._rng = rng or default_rng("loss.gilbert-elliott")

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    def drops(self, now: float) -> bool:
        if self._bad:
            if self._rng.random() < self._p_bg:
                self._bad = False
        else:
            if self._rng.random() < self._p_gb:
                self._bad = True
        p = self._loss_bad if self._bad else self._loss_good
        return self._rng.random() < p


class CompositeLoss:
    """Drops when *any* member model drops (e.g. burst over Bernoulli)."""

    def __init__(self, *models: LossModel) -> None:
        self._models = models

    def drops(self, now: float) -> bool:
        # Evaluate all models so stateful members keep advancing.
        return any([model.drops(now) for model in self._models])
