"""Simulated network links: latency, bandwidth, queueing, and loss.

A :class:`Link` is a unidirectional pipe.  Transit of a packet costs
serialization time (``size / bandwidth``) plus propagation ``latency``;
packets queue FIFO while the link is busy and are tail-dropped beyond
``queue_limit`` — which is exactly how the paper's congested T1 tail
circuits lose whole-site traffic (Figure 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simnet.loss import LossModel, NoLoss

__all__ = ["LinkStats", "Link"]


@dataclass
class LinkStats:
    """Per-link accounting used by the benchmark harness."""

    packets: int = 0
    bytes: int = 0
    drops_loss: int = 0
    drops_queue: int = 0

    def reset(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.drops_loss = 0
        self.drops_queue = 0


class Link:
    """One unidirectional link.

    Parameters
    ----------
    latency:
        Propagation delay in seconds.
    bandwidth:
        Bits per second; 0 disables serialization delay and queueing
        (an idealized LAN).
    queue_limit:
        Maximum queued packets while the link is busy; 0 = unbounded.
    loss:
        Stochastic loss model applied to every packet that got past the
        queue.
    """

    def __init__(
        self,
        name: str,
        latency: float = 0.001,
        bandwidth: float = 0.0,
        queue_limit: int = 0,
        loss: LossModel | None = None,
        jitter: float = 0.0,
        rng: "random.Random | None" = None,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if bandwidth < 0:
            raise ValueError(f"bandwidth must be non-negative, got {bandwidth}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be non-negative, got {queue_limit}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.queue_limit = queue_limit
        self.loss = loss or NoLoss()
        # Uniform extra delay in [0, jitter] per packet.  Jitter larger
        # than the packet spacing reorders deliveries — the condition the
        # receiver's nack_delay (Appendix A's "short retransmission
        # request timer") exists for.
        self.jitter = jitter
        self._rng = rng or random.Random(0)
        self.stats = LinkStats()
        self._busy_until = 0.0

    def transit(self, size: int, now: float) -> float | None:
        """Attempt to carry ``size`` bytes entering the link at ``now``.

        Returns the absolute time the packet exits the far end, or None
        when it was dropped (queue overflow or stochastic loss).  State
        (queue occupancy, loss-model state) advances either way.
        """
        if self.bandwidth:
            tx_time = (size * 8.0) / self.bandwidth
            start = max(now, self._busy_until)
            if self.queue_limit and tx_time > 0:
                # Packets ahead of us, minus the one in service, are queued.
                queued = (start - now) / tx_time - 1.0
                if queued >= self.queue_limit:
                    self.stats.drops_queue += 1
                    return None
        else:
            # Infinite capacity: no serialization, no FIFO coupling
            # between packets (deliveries may reorder under jitter).
            tx_time = 0.0
            start = now
        if self.loss.drops(now):
            # Loss consumes link time too (the bits were sent, then died).
            if self.bandwidth:
                self._busy_until = start + tx_time
            self.stats.drops_loss += 1
            return None
        if self.bandwidth:
            self._busy_until = start + tx_time
        self.stats.packets += 1
        self.stats.bytes += size
        extra = self._rng.uniform(0.0, self.jitter) if self.jitter else 0.0
        return start + tx_time + self.latency + extra

    @property
    def busy_until(self) -> float:
        """Time the link finishes its current backlog."""
        return self._busy_until

    def __repr__(self) -> str:
        return (
            f"Link({self.name!r}, latency={self.latency}, "
            f"bandwidth={self.bandwidth}, queue_limit={self.queue_limit})"
        )
