"""Turn-key LBRM deployments on the simulated WAN.

The paper's canonical evaluation scenario (§2.2.2) is "1,000 subscribers
distributed across 50 sites with 20 participating receivers at each
site", with the source and primary logger at their own site, ~80 ms RTT
across the WAN and ~4 ms RTT within a site.  :class:`LbrmDeployment`
builds exactly that (any dimensions), wires senders, loggers, replicas,
and receivers together, and exposes the pieces for experiments to poke
at — inject loss on one tail circuit, kill the primary, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LbrmConfig
from repro.core.errors import ConfigError
from repro.core.hierarchy import build_tree
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.sender import LbrmSender
from repro.simnet.engine import Simulator
from repro.simnet.hierarchy import HierarchyRuntime
from repro.simnet.node import SimNode
from repro.simnet.rng import RngStreams
from repro.simnet.topology import Network, Site
from repro.simnet.trace import PacketTrace

__all__ = ["DeploymentSpec", "LbrmDeployment"]


@dataclass(frozen=True)
class DeploymentSpec:
    """Shape and parameters of a simulated LBRM deployment.

    Latency defaults follow the paper's ping survey (§2.2.2): a local
    logger 3–4 ms RTT away, a primary ~80 ms RTT away — so 1 ms one-way
    on the LAN and 17.5 ms one-way on each tail circuit
    (2×(1+17.5+2.5+17.5+1) ≈ 79 ms host-to-host RTT across sites).
    """

    group: str = "dis/terrain/1"
    n_sites: int = 50
    receivers_per_site: int = 20
    n_replicas: int = 0
    lan_latency: float = 0.001
    tail_latency: float = 0.0175
    backbone_latency: float = 0.0025
    tail_bandwidth: float = 0.0  # bits/s; 0 = uncongested
    tail_queue: int = 0
    secondary_loggers: bool = True
    # §7 extension: "A multi-level hierarchy of logging servers may be
    # used to further reduce NACK bandwidth in large groups."  When > 0,
    # every `region_size` consecutive sites share a *regional* logger
    # that site loggers call back to, and only regions NACK the primary.
    region_size: int = 0
    # DESIGN §11: arbitrary-depth logger tree.  ``depth`` counts logger
    # levels including the primary (0) and the site loggers (depth-1);
    # depth=2 is the paper's flat layout and leaves behaviour untouched.
    # depth>=3 inserts makespan-aware interior hubs ("hub{level}-{k}-
    # logger") between the site loggers and the primary, maintained at
    # runtime by :class:`~repro.simnet.hierarchy.HierarchyRuntime`
    # (re-scoring, saturation/crash re-parenting).  ``fanout`` bounds
    # children per interior logger.
    depth: int = 2
    fanout: int = 8
    enable_statack: bool = False
    config: LbrmConfig = field(default_factory=LbrmConfig)
    seed: int = 0


class LbrmDeployment:
    """A built deployment: network, nodes, and protocol machines."""

    def __init__(self, spec: DeploymentSpec | None = None, sim: Simulator | None = None) -> None:
        self.spec = spec or DeploymentSpec()
        self.sim = sim or Simulator()
        self.streams = RngStreams(self.spec.seed)
        self.network = Network(
            self.sim, streams=self.streams, backbone_latency=self.spec.backbone_latency
        )
        self.trace = PacketTrace(self.network)

        self.source_site: Site | None = None
        self.receiver_sites: list[Site] = []
        self.sender: LbrmSender | None = None
        self.source_node: SimNode | None = None
        self.primary: LogServer | None = None
        self.primary_node: SimNode | None = None
        self.replicas: list[LogServer] = []
        self.replica_nodes: list[SimNode] = []
        self.site_loggers: list[LogServer] = []
        self.site_logger_nodes: list[SimNode] = []
        self.regional_loggers: list[LogServer] = []
        self.regional_logger_nodes: list[SimNode] = []
        self.interior_loggers: list[LogServer] = []
        self.interior_logger_nodes: list[SimNode] = []
        self.receivers: list[LbrmReceiver] = []
        self.receiver_nodes: list[SimNode] = []
        self.hierarchy: HierarchyRuntime | None = None
        self._build()

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        spec = self.spec
        if spec.depth < 2:
            raise ConfigError(f"tree depth must be >= 2 (root + site loggers), got {spec.depth}")
        if spec.depth > 2:
            if not spec.secondary_loggers:
                raise ConfigError("depth > 2 requires secondary_loggers")
            if spec.region_size > 0:
                raise ConfigError(
                    "depth/fanout and the legacy region_size knob are exclusive; "
                    "use depth=3 instead of region_size"
                )
        self.source_site = self._add_site("site0")
        source_host = self.network.add_host("source", self.source_site)
        primary_host = self.network.add_host("primary", self.source_site)

        replica_names = [f"replica{i}" for i in range(spec.n_replicas)]
        self.primary = LogServer(
            spec.group,
            addr_token="primary",
            config=spec.config,
            role=LoggerRole.PRIMARY,
            source="source",
            # The source is the primary's upstream (§2.2.3): it buffers
            # exactly the packets the log has not acknowledged, so the
            # primary backfills its own multicast losses from there.
            parent="source",
            replicas=tuple(replica_names),
            level=0,
        )
        self.primary_node = SimNode(self.network, primary_host, [self.primary])

        for name in replica_names:
            host = self.network.add_host(name, self.source_site)
            replica = LogServer(
                spec.group,
                addr_token=name,
                config=spec.config,
                role=LoggerRole.REPLICA,
                source="source",
            )
            self.replicas.append(replica)
            self.replica_nodes.append(SimNode(self.network, host, [replica]))

        self.sender = LbrmSender(
            spec.group,
            spec.config,
            primary="primary",
            replicas=tuple(replica_names),
            enable_statack=spec.enable_statack,
            addr_token="source",
            rng=self.streams.stream("sender"),
        )
        self.source_node = SimNode(self.network, source_host, [self.sender])

        if spec.depth > 2:
            self._build_deep()
            return

        for i in range(1, spec.n_sites + 1):
            site = self._add_site(f"site{i}")
            self.receiver_sites.append(site)
            # Multi-level hierarchy: a regional logger at the first site
            # of each region, parented to the primary (§7 extension).
            regional_name: str | None = None
            if spec.secondary_loggers and spec.region_size > 0:
                region_index = (i - 1) // spec.region_size
                regional_name = f"region{region_index}-logger"
                if (i - 1) % spec.region_size == 0:
                    regional_host = self.network.add_host(regional_name, site)
                    regional = LogServer(
                        spec.group,
                        addr_token=regional_name,
                        config=spec.config,
                        role=LoggerRole.SECONDARY,
                        parent="primary",
                        source="source",
                        level=1,
                        rng=self.streams.stream(f"logger:{regional_name}"),
                    )
                    self.regional_loggers.append(regional)
                    self.regional_logger_nodes.append(
                        SimNode(self.network, regional_host, [regional])
                    )
            chain: tuple[str, ...]
            if spec.secondary_loggers:
                logger_name = f"site{i}-logger"
                logger_host = self.network.add_host(logger_name, site)
                parent = regional_name if regional_name is not None else "primary"
                logger = LogServer(
                    spec.group,
                    addr_token=logger_name,
                    config=spec.config,
                    role=LoggerRole.SECONDARY,
                    parent=parent,
                    source="source",
                    level=2 if regional_name is not None else 1,
                    rng=self.streams.stream(f"logger:{logger_name}"),
                )
                self.site_loggers.append(logger)
                self.site_logger_nodes.append(SimNode(self.network, logger_host, [logger]))
                if regional_name is not None:
                    chain = (logger_name, regional_name, "primary")
                else:
                    chain = (logger_name, "primary")
            else:
                chain = ("primary",)
            for j in range(spec.receivers_per_site):
                rx_name = f"site{i}-rx{j}"
                rx_host = self.network.add_host(rx_name, site)
                receiver = LbrmReceiver(
                    spec.group,
                    spec.config.receiver,
                    logger_chain=chain,
                    source="source",
                    heartbeat=spec.config.heartbeat,
                )
                self.receivers.append(receiver)
                self.receiver_nodes.append(SimNode(self.network, rx_host, [receiver]))

    def _build_deep(self) -> None:
        """depth >= 3: site loggers under makespan-managed interior hubs.

        The initial tree is the balanced contiguous construction of
        :func:`~repro.core.hierarchy.build_tree`; each hub is hosted at
        the site of its first descendant leaf (a hub is an ordinary
        SECONDARY log server — it logs off the multicast group, serves
        its children's NACKs, and escalates its own holes to its tree
        parent).  :class:`HierarchyRuntime` then re-scores the tree at
        runtime from measured per-link RTT/loss.
        """
        spec = self.spec
        leaf_names = [f"site{i}-logger" for i in range(1, spec.n_sites + 1)]
        tree = build_tree("primary", leaf_names, depth=spec.depth, fanout=spec.fanout)
        site_of: dict[str, str] = {"primary": "site0"}
        receivers_by_leaf: dict[str, list[LbrmReceiver]] = {}
        for i in range(1, spec.n_sites + 1):
            site = self._add_site(f"site{i}")
            self.receiver_sites.append(site)
            leaf = f"site{i}-logger"
            site_of[leaf] = f"site{i}"
            logger_host = self.network.add_host(leaf, site)
            logger = LogServer(
                spec.group,
                addr_token=leaf,
                config=spec.config,
                role=LoggerRole.SECONDARY,
                parent=tree.parent(leaf),
                source="source",
                level=spec.depth - 1,
                rng=self.streams.stream(f"logger:{leaf}"),
            )
            self.site_loggers.append(logger)
            self.site_logger_nodes.append(SimNode(self.network, logger_host, [logger]))
            chain = tree.chain(leaf)
            receivers_by_leaf[leaf] = []
            for j in range(spec.receivers_per_site):
                rx_name = f"site{i}-rx{j}"
                rx_host = self.network.add_host(rx_name, site)
                receiver = LbrmReceiver(
                    spec.group,
                    spec.config.receiver,
                    logger_chain=chain,
                    source="source",
                    heartbeat=spec.config.heartbeat,
                )
                self.receivers.append(receiver)
                self.receiver_nodes.append(SimNode(self.network, rx_host, [receiver]))
                receivers_by_leaf[leaf].append(receiver)

        def leaf_index(name: str) -> int:
            return int(name[len("site"): name.index("-")])

        for level in range(1, spec.depth - 1):
            for name in tree.at_level(level):
                leaves_below = [
                    n for n in tree.subtree(name) if tree.level(n) == spec.depth - 1
                ]
                anchor = min(leaves_below, key=leaf_index)
                site_of[name] = site_of[anchor]
                hub_host = self.network.add_host(name, self.network.site(site_of[name]))
                hub = LogServer(
                    spec.group,
                    addr_token=name,
                    config=spec.config,
                    role=LoggerRole.SECONDARY,
                    parent=tree.parent(name),
                    source="source",
                    level=level,
                    # A hub's repair clients are remote site loggers; a
                    # TTL-scoped re-multicast could never reach them.
                    site_scoped_repairs=False,
                    rng=self.streams.stream(f"logger:{name}"),
                )
                self.interior_loggers.append(hub)
                self.interior_logger_nodes.append(SimNode(self.network, hub_host, [hub]))

        self.hierarchy = HierarchyRuntime(
            self,
            tree,
            config=spec.config.hierarchy,
            fanout=spec.fanout,
            site_of=site_of,
            receivers_by_leaf=receivers_by_leaf,
        )

    def _add_site(self, name: str) -> Site:
        spec = self.spec
        return self.network.add_site(
            name,
            lan_latency=spec.lan_latency,
            tail_latency=spec.tail_latency,
            tail_bandwidth=spec.tail_bandwidth,
            tail_queue=spec.tail_queue,
        )

    # -- operation ----------------------------------------------------------

    def start(self) -> None:
        """Start every node (group joins, watchdogs, statack bootstrap)."""
        if self.hierarchy is not None and not self.hierarchy.installed:
            self.hierarchy.install()
        for node in self.all_nodes():
            node.start()

    def node(self, name: str) -> SimNode:
        """The node hosting ``name`` (receivers, loggers, replicas, source)."""
        for node in self.all_nodes():
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def all_nodes(self) -> list[SimNode]:
        nodes: list[SimNode] = []
        if self.primary_node is not None:
            nodes.append(self.primary_node)
        nodes.extend(self.replica_nodes)
        nodes.extend(self.regional_logger_nodes)
        nodes.extend(self.interior_logger_nodes)
        nodes.extend(self.site_logger_nodes)
        nodes.extend(self.receiver_nodes)
        if self.source_node is not None:
            nodes.append(self.source_node)
        return nodes

    def send(self, payload: bytes) -> int:
        """Multicast one data packet from the source; returns its seq."""
        assert self.sender is not None and self.source_node is not None
        self.source_node.send_app(self.sender, payload)
        return self.sender.seq

    def advance(self, dt: float) -> None:
        """Run the simulation forward ``dt`` seconds."""
        self.sim.run_until(self.sim.now + dt)

    # -- experiment hooks ----------------------------------------------------

    def burst_site(self, site_name: str, duration: float) -> None:
        """Drop everything entering ``site_name`` for ``duration`` seconds
        starting now — the Figure 1 congested-tail-circuit event."""
        from repro.simnet.loss import BurstLoss

        site = self.network.site(site_name)
        site.tail_down.loss = BurstLoss([(self.sim.now, self.sim.now + duration)])

    def burst_sites(self, site_names: list[str], duration: float) -> None:
        """Burst several sites' tail circuits simultaneously."""
        for name in site_names:
            self.burst_site(name, duration)

    def kill_site_logger(self, index: int) -> None:
        """Crash one secondary logger (0-based, in site order)."""
        self.site_logger_nodes[index].machines.clear()

    def kill_primary(self) -> None:
        """Crash the primary logger: it stops answering everything."""
        assert self.primary_node is not None
        self.primary_node.machines.clear()

    def receivers_missing(self) -> int:
        """Total outstanding missing sequence numbers across receivers."""
        return sum(len(r.missing) for r in self.receivers)

    def receivers_with(self, seq: int) -> int:
        """How many receivers hold ``seq``."""
        return sum(1 for r in self.receivers if r.tracker.has(seq))
