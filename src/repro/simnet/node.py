"""Binding protocol machines to simulated hosts.

A :class:`SimNode` owns one or more sans-IO machines on one host.  It
dispatches inbound packets to every machine, executes the actions they
return (transmissions via the network, deliveries and events into local
sinks), and keeps each machine's next wakeup scheduled on the simulator.

The node is also where LBRM's address tokens resolve: in the simulator
an address *is* the host name, so token parsing is the identity.

Fault-injection hooks (used by :mod:`repro.chaos`): a node can be
*crashed* (machines detached, inbound traffic falls on the floor),
*restarted* (machines re-attached with their state intact — modelling
the paper's disk-backed logs, §2.2, coming back after a process
restart), *paused*/*resumed* (alive but unresponsive, a stop-the-world
pause), and given a *clock skew* (a constant offset added to the time
its machines observe, without perturbing the simulation clock).

Wakeups are armed either as one simulator event per node (the reference
configuration) or through the network's
:class:`~repro.simnet.engine.WakeupMux` (the fast path, on whenever
``batch_delivery`` is), which shares one event among every node armed
for the same deadline.
"""

from __future__ import annotations

from typing import Callable

from repro.core.actions import (
    Action,
    Deliver,
    JoinGroup,
    LeaveGroup,
    Notify,
    SendMulticast,
    SendUnicast,
)
from repro.core.events import Event
from repro.core.machine import ProtocolMachine
from repro.core.packets import Packet
from repro.simnet.engine import ScheduledEvent, Simulator
from repro.simnet.topology import Host, Network

__all__ = ["SimNode"]


class SimNode:
    """A host's protocol stack inside the simulation."""

    def __init__(
        self,
        network: Network,
        host: Host,
        machines: list[ProtocolMachine] | None = None,
        on_deliver: Callable[[Deliver, float], None] | None = None,
        on_event: Callable[[Event, float], None] | None = None,
    ) -> None:
        self._network = network
        self._sim: Simulator = network.sim
        self.host = host
        self.machines: list[ProtocolMachine] = list(machines or [])
        self._on_deliver = on_deliver
        self._on_event = on_event
        self._wakeup: ScheduledEvent | None = None
        # Deadline armed on the network's WakeupMux (fast path), or None.
        # The mux fires us by calling poll(); it clears this first.  A
        # value that no longer matches any live bucket is simply stale —
        # mux cancellation is lazy (see WakeupMux).
        self._mux_due: float | None = None
        self.delivered: list[Deliver] = []
        self.events: list[Event] = []
        # Fault-injection state (see module docstring).
        self.crashed = False
        self.paused = False
        self.clock_skew = 0.0
        self._stashed_machines: list[ProtocolMachine] = []
        host.attach(self)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def alive(self) -> bool:
        """True when the node can make protocol progress right now.

        A node whose machine list was emptied by hand (the pre-chaos
        idiom ``node.machines.clear()``) counts as dead too, so legacy
        fault injection and :meth:`crash` look the same to an oracle.
        """
        return bool(self.machines) and not self.crashed and not self.paused

    def _machine_now(self) -> float:
        return self._sim.now + self.clock_skew

    # -- machine management ----------------------------------------------------

    def add_machine(self, machine: ProtocolMachine) -> None:
        self.machines.append(machine)
        self._reschedule()

    def start(self) -> None:
        """Call each machine's ``start`` hook (if it has one) and arm timers."""
        for machine in self.machines:
            start = getattr(machine, "start", None)
            if callable(start):
                self.execute(start(self._machine_now()))
        self._reschedule()

    # -- the harness contract ---------------------------------------------------

    def receive(self, packet: Packet, src: str, now: float) -> None:
        """Network delivery entry point (called by :class:`Network`)."""
        if self.paused:
            return  # alive but unresponsive: inbound traffic is lost
        if self.clock_skew:
            now = now + self.clock_skew
        machines = self.machines
        if len(machines) == 1:
            # The common shape: one receiver per host.  Skipping the loop
            # frame shaves a measurable slice off every delivery — and the
            # single-machine _reschedule is inlined below for the same
            # reason (it runs once per packet in every scenario).
            machine = machines[0]
            actions = machine.handle(packet, src, now)
            if actions:
                self.execute(actions)
            if self.paused:
                return  # an executed action paused us; resume() re-arms
            next_due = machine.next_wakeup()
            if next_due is None:
                self._disarm()
                return
            if self.clock_skew:
                next_due = next_due - self.clock_skew
            mux = self._network.wakeup_mux
            if mux is not None:
                cur = self._mux_due
                if cur is not None and cur <= next_due:
                    return  # an earlier-or-equal mux wakeup is pending
                self._mux_due = next_due
                mux.arm(self, next_due)
                return
            wakeup = self._wakeup
            if wakeup is not None:
                if wakeup.time <= next_due and not wakeup.cancelled:
                    return  # an earlier-or-equal wakeup is already pending
                wakeup.cancel()
            self._wakeup = self._sim.schedule(next_due, self.poll)
        else:
            for machine in machines:
                actions = machine.handle(packet, src, now)
                if actions:  # usually empty — skip the dispatch loop
                    self.execute(actions)
            self._reschedule()

    def poll(self) -> None:
        self._wakeup = None
        if self.paused:
            return
        now = self._sim.now + self.clock_skew
        machines = self.machines
        if len(machines) == 1:
            machine = machines[0]
            due = machine.next_wakeup()
            if due is not None and due > now:
                # Stale wakeup: every deadline moved later since this
                # poll was scheduled (the receiver watchdog re-arms on
                # each packet, and _reschedule keeps the earlier wakeup
                # rather than cancelling it).  The machine declares
                # nothing due, so re-arm without entering it — in steady
                # traffic this skips a quarter of all machine entries.
                if self.clock_skew:
                    due = due - self.clock_skew
                self._arm(due)
                return
            actions = machine.poll(now)
            if actions:
                self.execute(actions)
        else:
            next_due = None
            for machine in machines:
                due = machine.next_wakeup()
                if due is not None and (next_due is None or due < next_due):
                    next_due = due
            if next_due is not None and next_due > now:
                if self.clock_skew:
                    next_due = next_due - self.clock_skew
                self._arm(next_due)
                return
            for machine in machines:
                actions = machine.poll(now)
                if actions:
                    self.execute(actions)
        self._reschedule()

    def execute(self, actions: list[Action]) -> None:
        """Carry out protocol actions against the simulated network.

        The isinstance chain is ordered by observed frequency: data
        deliveries dominate every scenario, then repair unicasts, then
        control multicasts; group churn is start-up only.
        """
        for action in actions:
            if isinstance(action, Deliver):
                self.delivered.append(action)
                if self._on_deliver is not None:
                    self._on_deliver(action, self._sim.now)
            elif isinstance(action, SendUnicast):
                self._network.send_unicast(self.name, action.dest, action.packet)
            elif isinstance(action, SendMulticast):
                self._network.send_multicast(self.name, action.group, action.packet, action.ttl)
            elif isinstance(action, Notify):
                self.events.append(action.event)
                if self._on_event is not None:
                    self._on_event(action.event, self._sim.now)
            elif isinstance(action, JoinGroup):
                self._network.join(action.group, self.name)
            elif isinstance(action, LeaveGroup):
                self._network.leave(action.group, self.name)
            else:  # pragma: no cover - future action types
                raise TypeError(f"unknown action {action!r}")

    # -- app-facing helpers ----------------------------------------------------

    def send_app(self, machine, payload: bytes) -> None:
        """Have a sender machine multicast application data now."""
        self.execute(machine.send(payload, self._machine_now()))
        self._reschedule()

    def run_machine(self, fn, *args) -> None:
        """Execute ``fn(*args)`` returning actions, then reschedule."""
        self.execute(fn(*args))
        self._reschedule()

    def events_of(self, event_type) -> list[Event]:
        """All observed events of ``event_type`` so far."""
        return [e for e in self.events if isinstance(e, event_type)]

    # -- fault injection ----------------------------------------------------

    def crash(self) -> None:
        """Kill the node: machines detach, pending wakeups die.

        Inbound packets are silently lost while crashed — exactly the
        behaviour of the hand-rolled ``machines.clear()`` idiom, but
        reversible via :meth:`restart`.
        """
        if self.crashed:
            return
        self.crashed = True
        self._stashed_machines = self.machines
        self.machines = []
        self._disarm()

    def restart(self) -> None:
        """Bring a crashed node back with its machines' state intact.

        Models a process restart recovering from its persistent state
        (loggers spool to disk, §2.2; receivers re-arm their watchdogs):
        every machine's ``start`` hook runs again, re-joining groups
        (idempotent) and re-arming timers, then gaps accumulated while
        dead surface through the normal heartbeat/gap machinery.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.machines = self._stashed_machines
        self._stashed_machines = []
        self.start()

    def pause(self) -> None:
        """Stop responding without dying (a stop-the-world pause)."""
        if self.paused:
            return
        self.paused = True
        self._disarm()

    def resume(self) -> None:
        """End a :meth:`pause`; timers re-arm and fire from now on."""
        if not self.paused:
            return
        self.paused = False
        self._reschedule()

    # -- wakeup plumbing ----------------------------------------------------

    def _arm(self, at: float) -> None:
        """Schedule a poll at true sim time ``at`` (mux or direct event)."""
        mux = self._network.wakeup_mux
        if mux is not None:
            self._mux_due = at
            mux.arm(self, at)
        else:
            self._wakeup = self._sim.schedule(at, self.poll)

    def _disarm(self) -> None:
        # A mux bucket holding us just goes stale (its fire loop checks
        # _mux_due); a direct event is cancelled for real.
        self._mux_due = None
        wakeup = self._wakeup
        if wakeup is not None:
            wakeup.cancel()
            self._wakeup = None

    def _reschedule(self) -> None:
        if self.paused:
            return  # resume() re-arms
        # Runs after every delivery; min() over a comprehension allocates
        # two lists per packet, so fold the minimum inline instead (and
        # skip the loop entirely for the common single-machine node).
        machines = self.machines
        if len(machines) == 1:
            next_due = machines[0].next_wakeup()
        else:
            next_due = None
            for machine in machines:
                due = machine.next_wakeup()
                if due is not None and (next_due is None or due < next_due):
                    next_due = due
        if next_due is None:
            self._disarm()
            return
        if self.clock_skew:
            # Machines speak skewed time; the simulator runs true time.
            next_due = next_due - self.clock_skew
        mux = self._network.wakeup_mux
        if mux is not None:
            cur = self._mux_due
            if cur is not None and cur <= next_due:
                return  # an earlier-or-equal mux wakeup is pending
            self._mux_due = next_due
            mux.arm(self, next_due)
            return
        wakeup = self._wakeup
        if wakeup is not None:
            if wakeup.time <= next_due and not wakeup.cancelled:
                return  # an earlier-or-equal wakeup is already pending
            wakeup.cancel()
        self._wakeup = self._sim.schedule(next_due, self.poll)
