"""Deterministic discrete-event simulation engine.

Two implementations of the same contract:

* :class:`Simulator` — the fast path: a timer wheel staging near-future
  events in O(1) buckets in front of a binary heap, with periodic
  tombstone compaction.  This is what every benchmark and deployment
  uses.
* :class:`ReferenceSimulator` — the original pure-heap engine, kept as
  the executable specification.  Property tests drive both with random
  schedule/cancel/reschedule interleavings and assert identical
  execution orders; the benchmark harness uses it as the pre-wheel
  baseline.

The ordering contract both implement: events execute in ``(time, tie)``
order, where ``tie`` is a monotone counter assigned at schedule time —
so simultaneous events run FIFO, and two runs issuing the same schedule
calls execute bit-identically.

Why a wheel?  Protocol machines cancel and reschedule short-horizon
timers constantly (heartbeat backoff, receiver watchdogs, NACK
suppression): under the pure heap every one of those is an O(log n)
push whose shell later surfaces as a tombstone pop.  The wheel makes
near-future schedule *and* cancel O(1) — a cancelled entry dies in its
bucket as a dead list slot, never touching the heap.  Only events that
survive to their slot's turn pay the heap push, and far-future events
(beyond the wheel horizon) fall back to the heap directly.
"""

from __future__ import annotations

import heapq
import itertools
import math
import sys
from typing import Any, Callable

from repro import obs

__all__ = ["ScheduledEvent", "Simulator", "ReferenceSimulator", "WakeupMux"]

# Upper bound on parked event shells; beyond this the allocator is fast
# enough that hoarding memory buys nothing.
_POOL_CAP = 8192


class ScheduledEvent:
    """Handle to a scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "tie", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, tie: int, callback: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.tie = tie
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.tie) < (other.time, other.tie)


class Simulator:
    """The simulation clock and event queue (timer wheel + heap).

    Parameters
    ----------
    start:
        Initial clock value.
    wheel_granularity:
        Width of one wheel slot in seconds.  Events closer to *now* than
        one slot go straight to the heap; events within
        ``wheel_granularity * wheel_slots`` of the current wheel base are
        staged in O(1) buckets.
    wheel_slots:
        Number of slots (the wheel horizon is ``slots * granularity``).
    compact_ratio:
        Compact (drop cancelled shells from) the queue when tombstones
        exceed ``compact_ratio`` × live events and ``compact_min``.
    """

    def __init__(
        self,
        start: float = 0.0,
        wheel_granularity: float = 0.01,
        wheel_slots: int = 1024,
        compact_ratio: float = 1.0,
        compact_min: int = 256,
    ) -> None:
        if wheel_granularity <= 0:
            raise ValueError(f"wheel_granularity must be positive, got {wheel_granularity}")
        if wheel_slots < 2:
            raise ValueError(f"wheel_slots must be >= 2, got {wheel_slots}")
        self._now = start
        # Heap entries are (time, tie, event) tuples: heapq then compares
        # at C speed (tie is unique, so the event itself never compares).
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._tie = itertools.count()
        self._processed = 0
        # Timer wheel state: `_wheel_pos` is the absolute index (time //
        # granularity) of the next slot that has not yet been flushed to
        # the heap; bucket i holds the events of every absolute slot
        # congruent to i within the current horizon window.
        self._gran = wheel_granularity
        self._slots = wheel_slots
        self._wheel: list[list[ScheduledEvent]] = [[] for _ in range(wheel_slots)]
        self._wheel_pos = math.floor(start / wheel_granularity)
        self._wheel_count = 0
        # Tombstone accounting and compaction thresholds.
        self._tombstones = 0
        self._compact_ratio = compact_ratio
        self._compact_min = compact_min
        self.compactions = 0
        self._peak_pending = 0
        # Event-shell freelist: fired and cancelled shells are reused by
        # schedule() instead of churning one ScheduledEvent allocation
        # per event.  A shell is recycled only when the run loop holds
        # the sole remaining reference (sys.getrefcount(event) == 2: the
        # loop's local plus getrefcount's own argument) — so a handle
        # kept anywhere else (a node's pending wakeup, a test) can never
        # watch its event be resurrected as someone else's.
        self._pool: list[ScheduledEvent] = []
        self._getrefcount = getattr(sys, "getrefcount", None)  # absent on PyPy
        registry = obs.registry()
        self._obs_processed = registry.counter("sim.events_processed")
        self._obs_queue_depth = registry.gauge("sim.queue_depth")
        self._obs_peak_depth = registry.gauge("sim.peak_queue_depth")

    # -- clock & counters ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def freelist_size(self) -> int:
        """Event shells currently parked for reuse."""
        return len(self._pool)

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events scheduled but not yet fired."""
        return len(self._queue) + self._wheel_count - self._tombstones

    @property
    def tombstones(self) -> int:
        """Cancelled shells still occupying queue or wheel storage."""
        return self._tombstones

    @property
    def peak_pending(self) -> int:
        """High-water mark of live pending events over the run."""
        return self._peak_pending

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    # -- scheduling ----------------------------------------------------------

    def schedule(self, at: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute time ``at``.

        Scheduling in the past is clamped to *now* (fires next) rather
        than rejected — protocol machines legitimately ask for immediate
        wakeups.
        """
        if at < self._now:
            at = self._now
        pool = self._pool
        if pool:
            # Pooled shells are always reset (cancelled=False, _sim=None)
            # before parking, so reuse is plain field assignment.
            event = pool.pop()
            event.time = at
            event.tie = next(self._tie)
            event.callback = callback
            event.args = args
        else:
            event = ScheduledEvent(at, next(self._tie), callback, args)
        event._sim = self
        gran = self._gran
        wheel_pos = self._wheel_pos
        if self._wheel_count == 0:
            # Empty wheel: snap the base forward so the horizon tracks
            # the clock instead of walking stale empty slots later.
            pos = math.floor(self._now / gran)
            if pos > wheel_pos:
                self._wheel_pos = wheel_pos = pos
        slot = int(at / gran)
        if slot * gran > at:
            # Truncation or float division rounded across the boundary; the
            # ordering invariant requires every wheel event's time >= its
            # slot base.  (For at >= 0 truncation is floor; negative clocks
            # only ever over-shoot by one, which this branch repairs.)
            slot -= 1
        if wheel_pos <= slot < wheel_pos + self._slots:
            self._wheel[slot % self._slots].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(self._queue, (at, event.tie, event))
        live = len(self._queue) + self._wheel_count - self._tombstones
        if live > self._peak_pending:
            self._peak_pending = live
        return event

    def schedule_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        return self.schedule(self._now + delay, callback, *args)

    # -- tombstone accounting & compaction ----------------------------------

    def _note_cancel(self) -> None:
        self._tombstones += 1
        live = len(self._queue) + self._wheel_count - self._tombstones
        if self._tombstones >= self._compact_min and self._tombstones > self._compact_ratio * live:
            self._compact()

    def _compact(self) -> None:
        """Physically drop cancelled shells from the heap and the wheel."""
        survivors = []
        for entry in self._queue:
            event = entry[2]
            if event.cancelled:
                event._sim = None
            else:
                survivors.append(entry)
        heapq.heapify(survivors)
        # In place: _run() holds a reference to this list across callbacks,
        # and a callback's cancel() can land here — rebinding would strand
        # the run loop on a stale queue.
        self._queue[:] = survivors
        for i, bucket in enumerate(self._wheel):
            if not bucket:
                continue
            kept = []
            for event in bucket:
                if event.cancelled:
                    event._sim = None
                    self._wheel_count -= 1
                else:
                    kept.append(event)
            self._wheel[i] = kept
        self._tombstones = 0
        self.compactions += 1

    # -- wheel → heap staging ------------------------------------------------

    def _flush_slot(self) -> None:
        """Move the next wheel slot's surviving events into the heap."""
        bucket = self._wheel[self._wheel_pos % self._slots]
        if bucket:
            self._wheel_count -= len(bucket)
            push = heapq.heappush
            queue = self._queue
            pool = self._pool
            getrefcount = self._getrefcount
            # Pop (rather than iterate-then-clear) so a dead shell's only
            # remaining reference is the local — making it poolable.  Push
            # order within the bucket is irrelevant: the heap re-sorts.
            while bucket:
                event = bucket.pop()
                if event.cancelled:
                    event._sim = None
                    self._tombstones -= 1
                    if (
                        getrefcount is not None
                        and getrefcount(event) == 2
                        and len(pool) < _POOL_CAP
                    ):
                        event.cancelled = False
                        event.callback = None
                        event.args = None
                        pool.append(event)
                else:
                    push(queue, (event.time, event.tie, event))
        self._wheel_pos += 1

    def _refill(self, limit: float) -> None:
        """Flush wheel slots until the heap's head is provably earliest.

        Any event still in the wheel has ``time >= wheel_base``; once the
        heap head is strictly earlier than the wheel base (or the base
        has passed ``limit``), popping the heap is safe.
        """
        while self._wheel_count:
            base = self._wheel_pos * self._gran
            if base > limit:
                break
            if self._queue and self._queue[0][0] < base:
                break
            self._flush_slot()

    # -- execution -----------------------------------------------------------

    def run_until(self, deadline: float, max_events: int | None = None) -> int:
        """Execute events with time <= ``deadline``; returns events run.

        The clock lands exactly on ``deadline`` afterwards, so repeated
        ``run_until`` calls paint a contiguous timeline.
        """
        executed = self._run(deadline, max_events)
        self._now = max(self._now, deadline)
        self._finish(executed)
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        executed = self._run(math.inf, max_events)
        self._finish(executed)
        return executed

    def _run(self, deadline: float, max_events: int | None) -> int:
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        pool = self._pool
        getrefcount = self._getrefcount
        gran = self._gran
        # One compare per iteration instead of a None check plus a
        # compare; callers never pass budgets anywhere near this bound.
        budget = sys.maxsize if max_events is None else max_events
        while True:
            if self._wheel_count:
                # _refill's first-iteration break conditions, inlined:
                # after a refill the heap head is almost always earlier
                # than the wheel base, so most iterations skip the call
                # entirely on two float compares.
                base = self._wheel_pos * gran
                if base <= deadline and not (queue and queue[0][0] < base):
                    self._refill(deadline)
            if not queue:
                break
            when = queue[0][0]
            if when > deadline:
                break
            if executed >= budget:
                break
            event = pop(queue)[2]
            event._sim = None
            if event.cancelled:
                self._tombstones -= 1
                if (
                    getrefcount is not None
                    and getrefcount(event) == 2
                    and len(pool) < _POOL_CAP
                ):
                    event.cancelled = False
                    event.callback = None
                    event.args = None
                    pool.append(event)
                continue
            self._now = when
            event.callback(*event.args)
            executed += 1
            # Recycle the fired shell iff nobody else holds the handle.
            if getrefcount is not None and getrefcount(event) == 2 and len(pool) < _POOL_CAP:
                event.callback = None
                event.args = None
                pool.append(event)
        # Batched: nothing reads the processed counter mid-run, and the
        # per-event increment was measurable at fig7 scale.
        self._processed += executed
        return executed

    def _finish(self, executed: int) -> None:
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(self.pending)
        self._obs_peak_depth.set(self._peak_pending)


class WakeupMux:
    """One simulator event per *distinct* wakeup deadline, shared by nodes.

    Co-sited receivers hear each multicast at the same instant and re-arm
    byte-identical watchdog deadlines — in the paper's 50×20 deployment
    every data packet produces twenty copies of the same wakeup time per
    site.  Scheduling one event per distinct deadline and fanning the
    polls out inside the callback removes the dominant event-count term
    from steady-state traffic, the same move the network's batched
    delivery makes for arrivals.  The mux is therefore part of the fast
    path only (see ``Network.batch_delivery``); the reference
    configuration keeps one event per node wakeup.

    Cancellation is lazy: re-arming never removes a node from an earlier
    bucket.  The fire loop skips any node whose armed deadline
    (``_mux_due``) no longer matches the bucket's, so a stale entry costs
    one attribute compare instead of a heap cancel.  Within a bucket,
    nodes fire in arm order — exactly the tie-counter order the per-node
    scheme yields for co-timed wakeups.
    """

    __slots__ = ("_sim", "_buckets")

    def __init__(self, sim) -> None:
        self._sim = sim
        self._buckets: dict[float, list] = {}

    def arm(self, node, due: float) -> None:
        """Ensure ``node.poll()`` runs at ``due`` (node sets ``_mux_due``)."""
        bucket = self._buckets.get(due)
        if bucket is None:
            self._buckets[due] = [node]
            self._sim.schedule(due, self._fire, due)
        else:
            bucket.append(node)

    def _fire(self, due: float) -> None:
        # Pop before iterating: a node that re-arms this exact deadline
        # from inside poll() gets a fresh bucket (and a fresh event,
        # clamped to now), never an append into the list being walked.
        for node in self._buckets.pop(due):
            if node._mux_due == due:
                node._mux_due = None
                node.poll()


class ReferenceSimulator:
    """The original pure-heap engine: the executable ordering spec.

    Kept verbatim (modulo live-``pending`` accounting) so the property
    suite can assert the wheel engine's execution order against it and
    the benchmark harness can measure the fast path's speedup over the
    pre-wheel baseline.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._queue: list[ScheduledEvent] = []
        self._tie = itertools.count()
        self._processed = 0
        self._tombstones = 0
        self._peak_pending = 0
        registry = obs.registry()
        self._obs_processed = registry.counter("sim.events_processed")
        self._obs_queue_depth = registry.gauge("sim.queue_depth")
        self._obs_peak_depth = registry.gauge("sim.peak_queue_depth")

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events scheduled but not yet fired."""
        return len(self._queue) - self._tombstones

    @property
    def tombstones(self) -> int:
        return self._tombstones

    @property
    def peak_pending(self) -> int:
        return self._peak_pending

    @property
    def processed(self) -> int:
        return self._processed

    def _note_cancel(self) -> None:
        self._tombstones += 1

    def schedule(self, at: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        event = ScheduledEvent(max(at, self._now), next(self._tie), callback, args)
        event._sim = self  # type: ignore[assignment]
        heapq.heappush(self._queue, event)
        live = len(self._queue) - self._tombstones
        if live > self._peak_pending:
            self._peak_pending = live
        return event

    def schedule_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        return self.schedule(self._now + delay, callback, *args)

    def run_until(self, deadline: float, max_events: int | None = None) -> int:
        executed = 0
        while self._queue and self._queue[0].time <= deadline:
            if max_events is not None and executed >= max_events:
                break
            event = heapq.heappop(self._queue)
            event._sim = None
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        self._now = max(self._now, deadline)
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(self.pending)
        self._obs_peak_depth.set(self._peak_pending)
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        executed = 0
        while self._queue and executed < max_events:
            event = heapq.heappop(self._queue)
            event._sim = None
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(self.pending)
        self._obs_peak_depth.set(self._peak_pending)
        return executed
