"""Deterministic discrete-event simulation engine.

Two implementations of the same contract:

* :class:`Simulator` — the fast path: a timer wheel staging near-future
  events in O(1) buckets in front of a binary heap, with periodic
  tombstone compaction.  This is what every benchmark and deployment
  uses.
* :class:`ReferenceSimulator` — the original pure-heap engine, kept as
  the executable specification.  Property tests drive both with random
  schedule/cancel/reschedule interleavings and assert identical
  execution orders; the benchmark harness uses it as the pre-wheel
  baseline.

The ordering contract both implement: events execute in ``(time, tie)``
order, where ``tie`` is a monotone counter assigned at schedule time —
so simultaneous events run FIFO, and two runs issuing the same schedule
calls execute bit-identically.

Why a wheel?  Protocol machines cancel and reschedule short-horizon
timers constantly (heartbeat backoff, receiver watchdogs, NACK
suppression): under the pure heap every one of those is an O(log n)
push whose shell later surfaces as a tombstone pop.  The wheel makes
near-future schedule *and* cancel O(1) — a cancelled entry dies in its
bucket as a dead list slot, never touching the heap.  Only events that
survive to their slot's turn pay the heap push, and far-future events
(beyond the wheel horizon) fall back to the heap directly.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable

from repro import obs

__all__ = ["ScheduledEvent", "Simulator", "ReferenceSimulator"]


class ScheduledEvent:
    """Handle to a scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "tie", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, tie: int, callback: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.tie = tie
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.tie) < (other.time, other.tie)


class Simulator:
    """The simulation clock and event queue (timer wheel + heap).

    Parameters
    ----------
    start:
        Initial clock value.
    wheel_granularity:
        Width of one wheel slot in seconds.  Events closer to *now* than
        one slot go straight to the heap; events within
        ``wheel_granularity * wheel_slots`` of the current wheel base are
        staged in O(1) buckets.
    wheel_slots:
        Number of slots (the wheel horizon is ``slots * granularity``).
    compact_ratio:
        Compact (drop cancelled shells from) the queue when tombstones
        exceed ``compact_ratio`` × live events and ``compact_min``.
    """

    def __init__(
        self,
        start: float = 0.0,
        wheel_granularity: float = 0.01,
        wheel_slots: int = 1024,
        compact_ratio: float = 1.0,
        compact_min: int = 256,
    ) -> None:
        if wheel_granularity <= 0:
            raise ValueError(f"wheel_granularity must be positive, got {wheel_granularity}")
        if wheel_slots < 2:
            raise ValueError(f"wheel_slots must be >= 2, got {wheel_slots}")
        self._now = start
        # Heap entries are (time, tie, event) tuples: heapq then compares
        # at C speed (tie is unique, so the event itself never compares).
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._tie = itertools.count()
        self._processed = 0
        # Timer wheel state: `_wheel_pos` is the absolute index (time //
        # granularity) of the next slot that has not yet been flushed to
        # the heap; bucket i holds the events of every absolute slot
        # congruent to i within the current horizon window.
        self._gran = wheel_granularity
        self._slots = wheel_slots
        self._wheel: list[list[ScheduledEvent]] = [[] for _ in range(wheel_slots)]
        self._wheel_pos = math.floor(start / wheel_granularity)
        self._wheel_count = 0
        # Tombstone accounting and compaction thresholds.
        self._tombstones = 0
        self._compact_ratio = compact_ratio
        self._compact_min = compact_min
        self.compactions = 0
        self._peak_pending = 0
        registry = obs.registry()
        self._obs_processed = registry.counter("sim.events_processed")
        self._obs_queue_depth = registry.gauge("sim.queue_depth")
        self._obs_peak_depth = registry.gauge("sim.peak_queue_depth")

    # -- clock & counters ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events scheduled but not yet fired."""
        return len(self._queue) + self._wheel_count - self._tombstones

    @property
    def tombstones(self) -> int:
        """Cancelled shells still occupying queue or wheel storage."""
        return self._tombstones

    @property
    def peak_pending(self) -> int:
        """High-water mark of live pending events over the run."""
        return self._peak_pending

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    # -- scheduling ----------------------------------------------------------

    def schedule(self, at: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute time ``at``.

        Scheduling in the past is clamped to *now* (fires next) rather
        than rejected — protocol machines legitimately ask for immediate
        wakeups.
        """
        if at < self._now:
            at = self._now
        event = ScheduledEvent(at, next(self._tie), callback, args)
        event._sim = self
        if self._wheel_count == 0:
            # Empty wheel: snap the base forward so the horizon tracks
            # the clock instead of walking stale empty slots later.
            pos = math.floor(self._now / self._gran)
            if pos > self._wheel_pos:
                self._wheel_pos = pos
        slot = math.floor(at / self._gran)
        if slot * self._gran > at:
            # Float division rounded across the boundary; the ordering
            # invariant requires every wheel event's time >= its slot base.
            slot -= 1
        if self._wheel_pos <= slot < self._wheel_pos + self._slots:
            self._wheel[slot % self._slots].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(self._queue, (at, event.tie, event))
        live = len(self._queue) + self._wheel_count - self._tombstones
        if live > self._peak_pending:
            self._peak_pending = live
        return event

    def schedule_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        return self.schedule(self._now + delay, callback, *args)

    # -- tombstone accounting & compaction ----------------------------------

    def _note_cancel(self) -> None:
        self._tombstones += 1
        live = len(self._queue) + self._wheel_count - self._tombstones
        if self._tombstones >= self._compact_min and self._tombstones > self._compact_ratio * live:
            self._compact()

    def _compact(self) -> None:
        """Physically drop cancelled shells from the heap and the wheel."""
        survivors = []
        for entry in self._queue:
            event = entry[2]
            if event.cancelled:
                event._sim = None
            else:
                survivors.append(entry)
        heapq.heapify(survivors)
        # In place: _run() holds a reference to this list across callbacks,
        # and a callback's cancel() can land here — rebinding would strand
        # the run loop on a stale queue.
        self._queue[:] = survivors
        for i, bucket in enumerate(self._wheel):
            if not bucket:
                continue
            kept = []
            for event in bucket:
                if event.cancelled:
                    event._sim = None
                    self._wheel_count -= 1
                else:
                    kept.append(event)
            self._wheel[i] = kept
        self._tombstones = 0
        self.compactions += 1

    # -- wheel → heap staging ------------------------------------------------

    def _flush_slot(self) -> None:
        """Move the next wheel slot's surviving events into the heap."""
        bucket = self._wheel[self._wheel_pos % self._slots]
        if bucket:
            self._wheel_count -= len(bucket)
            push = heapq.heappush
            queue = self._queue
            for event in bucket:
                if event.cancelled:
                    event._sim = None
                    self._tombstones -= 1
                else:
                    push(queue, (event.time, event.tie, event))
            bucket.clear()
        self._wheel_pos += 1

    def _refill(self, limit: float) -> None:
        """Flush wheel slots until the heap's head is provably earliest.

        Any event still in the wheel has ``time >= wheel_base``; once the
        heap head is strictly earlier than the wheel base (or the base
        has passed ``limit``), popping the heap is safe.
        """
        while self._wheel_count:
            base = self._wheel_pos * self._gran
            if base > limit:
                break
            if self._queue and self._queue[0][0] < base:
                break
            self._flush_slot()

    # -- execution -----------------------------------------------------------

    def run_until(self, deadline: float, max_events: int | None = None) -> int:
        """Execute events with time <= ``deadline``; returns events run.

        The clock lands exactly on ``deadline`` afterwards, so repeated
        ``run_until`` calls paint a contiguous timeline.
        """
        executed = self._run(deadline, max_events)
        self._now = max(self._now, deadline)
        self._finish(executed)
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        executed = self._run(math.inf, max_events)
        self._finish(executed)
        return executed

    def _run(self, deadline: float, max_events: int | None) -> int:
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        while True:
            if self._wheel_count:
                self._refill(deadline)
            if not queue:
                break
            when = queue[0][0]
            if when > deadline:
                break
            if max_events is not None and executed >= max_events:
                break
            event = pop(queue)[2]
            event._sim = None
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = when
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        return executed

    def _finish(self, executed: int) -> None:
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(self.pending)
        self._obs_peak_depth.set(self._peak_pending)


class ReferenceSimulator:
    """The original pure-heap engine: the executable ordering spec.

    Kept verbatim (modulo live-``pending`` accounting) so the property
    suite can assert the wheel engine's execution order against it and
    the benchmark harness can measure the fast path's speedup over the
    pre-wheel baseline.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._queue: list[ScheduledEvent] = []
        self._tie = itertools.count()
        self._processed = 0
        self._tombstones = 0
        self._peak_pending = 0
        registry = obs.registry()
        self._obs_processed = registry.counter("sim.events_processed")
        self._obs_queue_depth = registry.gauge("sim.queue_depth")
        self._obs_peak_depth = registry.gauge("sim.peak_queue_depth")

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events scheduled but not yet fired."""
        return len(self._queue) - self._tombstones

    @property
    def tombstones(self) -> int:
        return self._tombstones

    @property
    def peak_pending(self) -> int:
        return self._peak_pending

    @property
    def processed(self) -> int:
        return self._processed

    def _note_cancel(self) -> None:
        self._tombstones += 1

    def schedule(self, at: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        event = ScheduledEvent(max(at, self._now), next(self._tie), callback, args)
        event._sim = self  # type: ignore[assignment]
        heapq.heappush(self._queue, event)
        live = len(self._queue) - self._tombstones
        if live > self._peak_pending:
            self._peak_pending = live
        return event

    def schedule_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        return self.schedule(self._now + delay, callback, *args)

    def run_until(self, deadline: float, max_events: int | None = None) -> int:
        executed = 0
        while self._queue and self._queue[0].time <= deadline:
            if max_events is not None and executed >= max_events:
                break
            event = heapq.heappop(self._queue)
            event._sim = None
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        self._now = max(self._now, deadline)
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(self.pending)
        self._obs_peak_depth.set(self._peak_pending)
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        executed = 0
        while self._queue and executed < max_events:
            event = heapq.heappop(self._queue)
            event._sim = None
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(self.pending)
        self._obs_peak_depth.set(self._peak_pending)
        return executed
