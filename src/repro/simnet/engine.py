"""Deterministic discrete-event simulation engine.

A minimal, fast event loop: a heap of ``(time, tie, callback)`` entries
with stable FIFO ordering for simultaneous events and O(1) cancellation
by tombstone.  Every benchmark and integration test in this repository
runs on this engine with a seeded RNG, so results are bit-for-bit
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro import obs

__all__ = ["ScheduledEvent", "Simulator"]


class ScheduledEvent:
    """Handle to a scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "tie", "callback", "args", "cancelled")

    def __init__(self, time: float, tie: int, callback: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.tie = tie
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.tie) < (other.time, other.tie)


class Simulator:
    """The simulation clock and event queue."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._queue: list[ScheduledEvent] = []
        self._tie = itertools.count()
        self._processed = 0
        registry = obs.registry()
        self._obs_processed = registry.counter("sim.events_processed")
        self._obs_queue_depth = registry.gauge("sim.queue_depth")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Events scheduled but not yet fired (including cancelled shells)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    def schedule(self, at: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute time ``at``.

        Scheduling in the past is clamped to *now* (fires next) rather
        than rejected — protocol machines legitimately ask for immediate
        wakeups.
        """
        event = ScheduledEvent(max(at, self._now), next(self._tie), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        return self.schedule(self._now + delay, callback, *args)

    def run_until(self, deadline: float, max_events: int | None = None) -> int:
        """Execute events with time <= ``deadline``; returns events run.

        The clock lands exactly on ``deadline`` afterwards, so repeated
        ``run_until`` calls paint a contiguous timeline.
        """
        executed = 0
        while self._queue and self._queue[0].time <= deadline:
            if max_events is not None and executed >= max_events:
                break
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        self._now = max(self._now, deadline)
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(len(self._queue))
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        executed = 0
        while self._queue and executed < max_events:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        self._obs_processed.inc(executed)
        self._obs_queue_depth.set(len(self._queue))
        return executed
