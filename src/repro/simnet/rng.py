"""Seeded random-number streams for reproducible simulations.

Every stochastic element of a simulation (per-link loss, per-logger
volunteer coins, workload generators) draws from its own named stream,
so adding a new consumer never perturbs the draws of existing ones —
the standard trick for variance reduction and regression-stable
experiments.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngStreams", "default_rng"]


def default_rng(name: str) -> random.Random:
    """Deterministic fallback RNG for components built without one.

    Derived like an :class:`RngStreams` stream but from a fixed root
    seed: a default-constructed loss model draws the same sequence every
    run, and two differently-named consumers never share a stream.
    Experiments that need seed control still pass an explicit RNG.
    """
    digest = hashlib.sha256(f"default:{name}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class RngStreams:
    """A family of independent, deterministically-seeded RNGs."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """The RNG dedicated to ``name`` (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng
