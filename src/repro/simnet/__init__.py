"""Deterministic discrete-event network simulator for LBRM experiments.

Provides the substrate the paper ran on real hardware: a WAN of sites
with congestion-prone tail circuits (Figure 1), multicast distribution
trees with shared loss fate, TTL scoping, and a harness
(:class:`~repro.simnet.node.SimNode`) that carries the sans-IO protocol
machines of :mod:`repro.core`.
"""

from repro.simnet.deploy import DeploymentSpec, LbrmDeployment
from repro.simnet.engine import ScheduledEvent, Simulator
from repro.simnet.links import Link, LinkStats
from repro.simnet.loss import (
    BernoulliLoss,
    BurstLoss,
    CompositeLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
)
from repro.simnet.node import SimNode
from repro.simnet.rng import RngStreams
from repro.simnet.topology import (
    CROSS_SITE_HOPS,
    SAME_SITE_HOPS,
    Host,
    Network,
    Site,
    wire_size,
)
from repro.simnet.trace import PacketTrace, TraceRecord

__all__ = [
    "DeploymentSpec",
    "LbrmDeployment",
    "ScheduledEvent",
    "Simulator",
    "Link",
    "LinkStats",
    "BernoulliLoss",
    "BurstLoss",
    "CompositeLoss",
    "GilbertElliottLoss",
    "LossModel",
    "NoLoss",
    "SimNode",
    "RngStreams",
    "CROSS_SITE_HOPS",
    "SAME_SITE_HOPS",
    "Host",
    "Network",
    "Site",
    "wire_size",
    "PacketTrace",
    "TraceRecord",
]
