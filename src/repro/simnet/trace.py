"""Protocol-level packet tracing for experiments.

:class:`PacketTrace` installs itself as the network observer and keeps
per-packet-type delivery/drop counts, split into intra-site and
cross-site traffic.  Cross-site counts are the paper's currency: Figure
7's claim is that distributed logging cuts the NACKs *crossing the tail
circuits and WAN* from one per receiver to one per site.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro import obs
from repro.core.packets import Packet, PacketType
from repro.simnet.topology import Network

__all__ = ["TraceRecord", "PacketTrace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced packet movement (kept only when ``keep_records``)."""

    time: float
    kind: str  # "rx" or "drop"
    ptype: int
    seq: int
    src: str
    dst: str
    cross_site: bool


class PacketTrace:
    """Counting observer for a simulated network."""

    def __init__(self, network: Network, keep_records: bool = False) -> None:
        self._network = network
        self._keep = keep_records
        self.records: list[TraceRecord] = []
        # (kind, ptype, cross_site) -> [count, mirror_instrument_or_None].
        # A two-slot list cell costs one dict hit per observation; the
        # registry instrument rides in the cell only while a recording
        # registry is installed, so the common unrecorded run never pays
        # a no-op inc() call.  ``counts`` materializes the Counter view.
        self._cells: dict[tuple, list] = {}
        self._registry = obs.registry()
        # Hosts never change sites, so (src, dst) -> cross-site resolves
        # to a dict hit after the first packet on each pair.
        self._site_cache: dict[tuple[str, str], bool] = {}
        network.observer = self.observe
        # Installed *after* the observer on purpose: assigning observer
        # clears batch_observer, and anything else replacing/wrapping the
        # observer (the chaos oracle chains it) clears it again — so the
        # amortized path can never bypass a foreign observer.
        network.batch_observer = self.observe_batch

    @property
    def counts(self) -> Counter:
        """(kind, ptype, cross_site) -> count, as a Counter view."""
        return Counter({key: cell[0] for key, cell in self._cells.items()})

    def _cell(self, key: tuple) -> list:
        reg = self._registry
        instrument = None
        if reg.enabled:
            instrument = reg.counter(
                "simnet.packets",
                kind=key[0],
                ptype=PacketType(key[1]).name,
                scope="cross" if key[2] else "local",
            )
        cell = self._cells[key] = [0, instrument]
        return cell

    def observe(self, kind: str, packet: Packet, src: str, dst: str, now: float) -> None:
        pair = (src, dst)
        cross = self._site_cache.get(pair)
        if cross is None:
            cross = self._site_cache[pair] = self._cross_site(src, dst)
        # PacketType is an IntEnum: as a dict key it hashes/compares
        # like its int value, so skip the per-packet int() conversion.
        key = (kind, packet.TYPE, cross)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cell(key)
        cell[0] += 1
        if cell[1] is not None:
            cell[1].inc()
        if self._keep:
            seq = getattr(packet, "seq", getattr(packet, "cum_seq", 0))
            self.records.append(
                TraceRecord(
                    time=now,
                    kind=kind,
                    ptype=int(packet.TYPE),
                    seq=seq,
                    src=src,
                    dst=dst,
                    cross_site=cross,
                )
            )

    def observe_batch(self, packet: Packet, src: str, hosts: list, now: float) -> None:
        """Amortized ``observe``: one co-timed delivery batch per call.

        Byte-equivalent to per-host ``observe("rx", ...)`` calls — the
        per-scope counts are bumped by the batch totals, and record
        keeping falls back to the exact per-host path.
        """
        src_host = self._network._hosts.get(src)
        src_site = src_host.site if src_host is not None else None
        n_cross = 0
        if src_site is not None:
            for h in hosts:
                if h.site is not src_site:
                    n_cross += 1
        n_local = len(hosts) - n_cross
        ptype = packet.TYPE
        cells = self._cells
        for cross, n in ((False, n_local), (True, n_cross)):
            if not n:
                continue
            key = ("rx", ptype, cross)
            cell = cells.get(key)
            if cell is None:
                cell = self._cell(key)
            cell[0] += n
            if cell[1] is not None:
                cell[1].inc(n)
        if self._keep:
            seq = getattr(packet, "seq", getattr(packet, "cum_seq", 0))
            it = int(ptype)
            append = self.records.append
            for h in hosts:
                append(
                    TraceRecord(
                        time=now,
                        kind="rx",
                        ptype=it,
                        seq=seq,
                        src=src,
                        dst=h.name,
                        cross_site=src_site is not None and h.site is not src_site,
                    )
                )

    def _cross_site(self, src: str, dst: str) -> bool:
        try:
            return self._network.host(src).site is not self._network.host(dst).site
        except KeyError:
            return False

    # -- queries ----------------------------------------------------------

    def delivered(self, ptype: PacketType, cross_site: bool | None = None) -> int:
        """Packets of ``ptype`` delivered (optionally filtered by scope)."""
        return self._count("rx", ptype, cross_site)

    def dropped(self, ptype: PacketType, cross_site: bool | None = None) -> int:
        return self._count("drop", ptype, cross_site)

    def attempted(self, ptype: PacketType, cross_site: bool | None = None) -> int:
        """Delivered + dropped — i.e. traffic that entered the network."""
        return self.delivered(ptype, cross_site) + self.dropped(ptype, cross_site)

    def cross_site_nacks(self) -> int:
        """NACKs that left their site — the Figure 7 metric."""
        return self.attempted(PacketType.NACK, cross_site=True)

    def reset(self) -> None:
        self.records.clear()
        self._cells.clear()

    def _cell_count(self, key: tuple) -> int:
        cell = self._cells.get(key)
        return cell[0] if cell is not None else 0

    def _count(self, kind: str, ptype: PacketType, cross_site: bool | None) -> int:
        if cross_site is None:
            return self._cell_count((kind, int(ptype), True)) + self._cell_count(
                (kind, int(ptype), False)
            )
        return self._cell_count((kind, int(ptype), cross_site))
