"""Protocol-level packet tracing for experiments.

:class:`PacketTrace` installs itself as the network observer and keeps
per-packet-type delivery/drop counts, split into intra-site and
cross-site traffic.  Cross-site counts are the paper's currency: Figure
7's claim is that distributed logging cuts the NACKs *crossing the tail
circuits and WAN* from one per receiver to one per site.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro import obs
from repro.core.packets import Packet, PacketType
from repro.simnet.topology import Network

__all__ = ["TraceRecord", "PacketTrace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced packet movement (kept only when ``keep_records``)."""

    time: float
    kind: str  # "rx" or "drop"
    ptype: int
    seq: int
    src: str
    dst: str
    cross_site: bool


class PacketTrace:
    """Counting observer for a simulated network."""

    def __init__(self, network: Network, keep_records: bool = False) -> None:
        self._network = network
        self._keep = keep_records
        self.records: list[TraceRecord] = []
        # (kind, ptype, cross_site) -> count
        self.counts: Counter = Counter()
        # Mirror every observation into the process registry as
        # ``simnet.packets{kind,ptype,scope}`` so experiments can source
        # their figures from one place.  Counters are cached per key —
        # observe() is the hottest call in every simulation.
        self._registry = obs.registry()
        self._obs_counters: dict[tuple[str, int, bool], object] = {}
        # Hosts never change sites, so (src, dst) -> cross-site resolves
        # to a dict hit after the first packet on each pair.
        self._site_cache: dict[tuple[str, str], bool] = {}
        network.observer = self.observe

    def observe(self, kind: str, packet: Packet, src: str, dst: str, now: float) -> None:
        pair = (src, dst)
        cross = self._site_cache.get(pair)
        if cross is None:
            cross = self._site_cache[pair] = self._cross_site(src, dst)
        # PacketType is an IntEnum: as a dict key it hashes/compares
        # like its int value, so skip the per-packet int() conversion.
        key = (kind, packet.TYPE, cross)
        self.counts[key] += 1
        counter = self._obs_counters.get(key)
        if counter is None:
            counter = self._registry.counter(
                "simnet.packets",
                kind=kind,
                ptype=PacketType(key[1]).name,
                scope="cross" if cross else "local",
            )
            self._obs_counters[key] = counter
        counter.inc()
        if self._keep:
            seq = getattr(packet, "seq", getattr(packet, "cum_seq", 0))
            self.records.append(
                TraceRecord(
                    time=now,
                    kind=kind,
                    ptype=int(packet.TYPE),
                    seq=seq,
                    src=src,
                    dst=dst,
                    cross_site=cross,
                )
            )

    def _cross_site(self, src: str, dst: str) -> bool:
        try:
            return self._network.host(src).site is not self._network.host(dst).site
        except KeyError:
            return False

    # -- queries ----------------------------------------------------------

    def delivered(self, ptype: PacketType, cross_site: bool | None = None) -> int:
        """Packets of ``ptype`` delivered (optionally filtered by scope)."""
        return self._count("rx", ptype, cross_site)

    def dropped(self, ptype: PacketType, cross_site: bool | None = None) -> int:
        return self._count("drop", ptype, cross_site)

    def attempted(self, ptype: PacketType, cross_site: bool | None = None) -> int:
        """Delivered + dropped — i.e. traffic that entered the network."""
        return self.delivered(ptype, cross_site) + self.dropped(ptype, cross_site)

    def cross_site_nacks(self) -> int:
        """NACKs that left their site — the Figure 7 metric."""
        return self.attempted(PacketType.NACK, cross_site=True)

    def reset(self) -> None:
        self.records.clear()
        self.counts.clear()

    def _count(self, kind: str, ptype: PacketType, cross_site: bool | None) -> int:
        if cross_site is None:
            return self.counts[(kind, int(ptype), True)] + self.counts[(kind, int(ptype), False)]
        return self.counts[(kind, int(ptype), cross_site)]
