"""Simulator adapter for the k-level repair tree (DESIGN §11).

:class:`HierarchyRuntime` connects a :class:`~repro.core.hierarchy.TreeManager`
to a built :class:`~repro.simnet.deploy.LbrmDeployment`:

* it **measures**: a read-only tap on the network observer pairs each
  logger's upstream NACK with the repair that answers it, feeding
  per-link RTT samples into the manager's :class:`LinkEstimate`s, and
  counts re-sent requests as loss;
* it **re-scores** the tree once per ``rescore_interval`` (one heartbeat
  epoch by default) against the current live set and each logger's
  outstanding-upstream-repair queue depth (saturation);
* it **applies** moves: a re-parented logger gets ``set_parent`` (its
  pending upstream retries follow automatically — the retry path reads
  the current parent), and every receiver whose escalation chain crossed
  the moved edge gets the recomputed chain.

The tap is read-only and the rescore pass is a deterministic function of
simulated state, so a run with the runtime installed on a healthy tree
is packet-for-packet identical across engines — the differential chaos
campaign leans on that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import HierarchyConfig
from repro.core.hierarchy import LoggerTree, Reparent, TreeManager
from repro.core.packets import NackPacket, RetransPacket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.logger import LogServer
    from repro.core.receiver import LbrmReceiver
    from repro.simnet.deploy import LbrmDeployment
    from repro.simnet.node import SimNode

__all__ = ["HierarchyRuntime"]


class HierarchyRuntime:
    """Live tree maintenance for one simulated deployment."""

    def __init__(
        self,
        deployment: "LbrmDeployment",
        tree: LoggerTree,
        *,
        config: HierarchyConfig,
        fanout: int,
        site_of: dict[str, str],
        receivers_by_leaf: dict[str, list["LbrmReceiver"]],
    ) -> None:
        self.deployment = deployment
        self.config = config
        self._site_of = site_of
        self._receivers_by_leaf = receivers_by_leaf
        spec = deployment.spec
        lan = 2.0 * spec.lan_latency
        wan = 2.0 * (2 * spec.lan_latency + 2 * spec.tail_latency + spec.backbone_latency)

        def seed_cost(child: str, parent: str) -> float:
            # Static-topology RTT prior: measured samples take over as
            # soon as the first repair round trip completes.
            if site_of.get(child) == site_of.get(parent, "site0"):
                return lan
            return wan

        self.manager = TreeManager(
            tree,
            fanout=fanout,
            serve_cost=config.serve_cost,
            hysteresis=config.hysteresis,
            link_alpha=config.link_alpha,
            max_widen=config.link_max_widen,
            seed_cost=seed_cost,
        )
        # name -> (machine, node) for every logger that is a tree node.
        self._loggers: dict[str, tuple["LogServer", "SimNode"]] = {}
        for machine, node in zip(deployment.site_loggers, deployment.site_logger_nodes):
            self._loggers[machine.addr_token] = (machine, node)
        for machine, node in zip(deployment.interior_loggers, deployment.interior_logger_nodes):
            self._loggers[machine.addr_token] = (machine, node)
        # Last chain pushed to each leaf's receivers (change detection).
        self._chains: dict[str, tuple[str, ...]] = {
            leaf: tree.chain(leaf) for leaf in receivers_by_leaf
        }
        self._installed = False

    # -- wiring ------------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> None:
        """Attach the measurement tap and start the rescore cadence."""
        if self._installed:
            raise RuntimeError("hierarchy runtime already installed")
        self._installed = True
        network = self.deployment.network
        chained = network.observer
        network.observer = self._make_observer(chained)
        sim = self.deployment.sim
        sim.schedule(sim.now + self.config.rescore_interval, self._tick)

    def _make_observer(self, chained):
        loggers = self._loggers
        manager = self.manager
        tree = manager.tree

        def observe(kind: str, packet, src: str, dst: str, now: float) -> None:
            if chained is not None:
                chained(kind, packet, src, dst, now)
            if kind != "rx":
                return
            t = type(packet)
            if t is NackPacket:
                # An upstream request: only the watched child -> current
                # parent edges count (receiver NACKs share the type but
                # never have a logger as src).
                if src in loggers and tree.parent(src) == dst:
                    for seq in packet.seqs:
                        if manager.has_outstanding(src, seq):
                            manager.note_retry(src, (seq,))
                        else:
                            manager.note_request(src, (seq,), now)
            elif t is RetransPacket:
                if dst in loggers:
                    manager.note_repair(dst, packet.seq, now)

        return observe

    # -- periodic rescore --------------------------------------------------

    def _tick(self) -> None:
        now = self.deployment.sim.now
        self.rescore_now()
        self.deployment.sim.schedule(now + self.config.rescore_interval, self._tick)

    def live_set(self) -> frozenset[str]:
        live = {name for name, (_m, node) in self._loggers.items() if node.alive}
        primary_node = self.deployment.primary_node
        if primary_node is not None and primary_node.alive:
            live.add(self.manager.tree.root)
        return frozenset(live)

    def saturated_set(self) -> frozenset[str]:
        threshold = self.config.saturation_outstanding
        return frozenset(
            name
            for name, (machine, node) in self._loggers.items()
            if node.alive and len(machine._upstream_retries) >= threshold
        )

    def rescore_now(self) -> list[Reparent]:
        """One re-scoring pass; applies and returns the moves."""
        moves = self.manager.rescore(
            self.deployment.sim.now,
            live=self.live_set(),
            saturated=self.saturated_set(),
        )
        if moves:
            self._apply_moves(moves)
        return moves

    def force_reparent(self, child: str) -> Reparent | None:
        """Chaos hook: mid-epoch tree mutation (move one live edge)."""
        move = self.manager.force_reparent(
            child, live=self.live_set(), now=self.deployment.sim.now
        )
        if move is not None:
            self._apply_moves([move])
        return move

    def _apply_moves(self, moves: list[Reparent]) -> None:
        for move in moves:
            entry = self._loggers.get(move.child)
            if entry is not None:
                entry[0].set_parent(move.new_parent)
        # Any move can change chains for a whole subtree of leaves;
        # recompute all leaf chains and push only the ones that changed.
        tree = self.manager.tree
        for leaf, receivers in self._receivers_by_leaf.items():
            chain = tree.chain(leaf)
            if chain != self._chains.get(leaf):
                self._chains[leaf] = chain
                for receiver in receivers:
                    receiver.set_logger_chain(chain)

    # -- reporting ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic snapshot for chaos digests and reports."""
        return {
            "tree": self.manager.tree.to_dict(),
            "moves": [m.to_dict() for m in self.manager.moves],
            "makespan": round(self.manager.makespan(), 6),
            "stats": dict(sorted(self.manager.stats.items())),
        }
