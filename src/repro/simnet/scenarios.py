"""Canonical experiment scenarios shared by tests and benchmarks.

These build the §6 comparison worlds — the same topology and loss
pattern under LBRM and under the wb/SRM baseline — so the crying-baby
and recovery-latency experiments measure protocols, not harness
differences.
"""

from __future__ import annotations

from repro.baselines.srm import SrmMember, SrmSender
from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.sender import LbrmSender
from repro.simnet.loss import BernoulliLoss
from repro.simnet.node import SimNode
from repro.simnet.rng import RngStreams
from repro.simnet.topology import Network
from repro.simnet.engine import Simulator

__all__ = ["CRYING_BABY", "run_srm_crying_baby", "run_lbrm_crying_baby"]

# The §6 crying-baby configuration: one receiver behind a terrible link.
CRYING_BABY = {
    "n_sites": 4,
    "rx_per_site": 3,
    "baby_loss": 0.4,
    "n_packets": 30,
    "d_source": 0.04,
}


def _topology(sim: Simulator, seed: int) -> tuple[Network, list]:
    net = Network(sim, streams=RngStreams(seed))
    sites = [net.add_site(f"s{i}") for i in range(CRYING_BABY["n_sites"] + 1)]
    return net, sites


def run_srm_crying_baby(seed: int = 0):
    """wb/SRM world: returns (members, innocent_member)."""
    sim = Simulator()
    net, sites = _topology(sim, seed)
    streams = RngStreams(seed + 100)
    src_host = net.add_host("src", sites[0])
    sender = SrmSender("g")
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    net.join("g", "src")
    members = []
    nodes = []
    for i in range(CRYING_BABY["n_sites"]):
        for j in range(CRYING_BABY["rx_per_site"]):
            name = f"m{i}-{j}"
            host = net.add_host(name, sites[i + 1])
            member = SrmMember("g", d_source=CRYING_BABY["d_source"],
                               rng=streams.stream(name))
            node = SimNode(net, host, [member])
            node.start()
            members.append(member)
            nodes.append((name, host, member))
    baby_host = nodes[0][1]
    baby_host.inbound_loss = BernoulliLoss(CRYING_BABY["baby_loss"], streams.stream("baby-loss"))
    src_node_endpoint = net.host("src").endpoint
    for _ in range(CRYING_BABY["n_packets"]):
        src_node_endpoint.send_app(sender, b"payload")
        sim.run_until(sim.now + 0.5)
    sim.run_until(sim.now + 5.0)
    innocent = nodes[-1][2]
    return members, innocent


def run_lbrm_crying_baby(seed: int = 0):
    """LBRM world: returns (receivers, hosts)."""
    sim = Simulator()
    net, sites = _topology(sim, seed)
    streams = RngStreams(seed + 200)
    cfg = LbrmConfig()
    src_host = net.add_host("src", sites[0])
    prim_host = net.add_host("primary", sites[0])
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="src", level=0)
    SimNode(net, prim_host, [primary]).start()
    sender = LbrmSender("g", cfg, primary="primary", addr_token="src")
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    receivers = []
    hosts = []
    for i in range(CRYING_BABY["n_sites"]):
        lg_host = net.add_host(f"lg{i}", sites[i + 1])
        logger = LogServer("g", addr_token=f"lg{i}", config=cfg,
                           role=LoggerRole.SECONDARY, parent="primary",
                           source="src", rng=streams.stream(f"lg{i}"))
        SimNode(net, lg_host, [logger]).start()
        for j in range(CRYING_BABY["rx_per_site"]):
            name = f"m{i}-{j}"
            host = net.add_host(name, sites[i + 1])
            rx = LbrmReceiver("g", cfg.receiver, logger_chain=(f"lg{i}", "primary"),
                              source="src", heartbeat=cfg.heartbeat)
            SimNode(net, host, [rx]).start()
            receivers.append(rx)
            hosts.append(host)
    hosts[0].inbound_loss = BernoulliLoss(CRYING_BABY["baby_loss"], streams.stream("baby-loss"))
    for _ in range(CRYING_BABY["n_packets"]):
        src_node.send_app(sender, b"payload")
        sim.run_until(sim.now + 0.5)
    sim.run_until(sim.now + 5.0)
    return receivers, hosts
