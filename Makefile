# LBRM reproduction — developer entry points.

.PHONY: test bench examples lint all

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "== $$ex =="; python $$ex; done

all: test bench
